//! The Hardware Fuzzing Loop (§IV, Fig. 1): generator → correction → test
//! construction → DUT → reward → PPO update, with the instruction mask and
//! reset module keeping exploration alive.

use std::collections::VecDeque;

use hfl_nn::persist::{
    read_bool, read_f32, read_f32_vec, read_f64, read_u32, read_u64, read_usize, write_bool,
    write_f32, write_f32_vec, write_f64, write_u32, write_u64, write_usize, Codec, PersistError,
};
use hfl_nn::{Adam, LstmState};
use hfl_rl::{advantage, PpoConfig, RewardConfig, RewardNormalizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::baselines::{Feedback, Fuzzer, TestBody};
use crate::generator::{EpisodeStep, GenSession, GeneratorConfig, InstructionGenerator};
use crate::obs::{Event, SinkHandle};
use crate::persist;
use crate::predictor::{
    CoveragePredictor, CoverageSession, PredictorConfig, ValuePredictor, ValueSession,
};
use crate::tokens::Tokens;
use hfl_riscv::Instruction;

/// Configuration of the full loop, §V defaults throughout. The boolean
/// switches exist for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HflConfig {
    /// Generator hyper-parameters (§V-A).
    pub generator: GeneratorConfig,
    /// Predictor hyper-parameters (§V-A).
    pub predictor: PredictorConfig,
    /// Reward shape (Eq. 1; §V-B: α = 0.2, r_bonus = 0.4).
    pub reward: RewardConfig,
    /// PPO hyper-parameters (§V-B: γ = 0.1, ε = 0.2).
    pub ppo: PpoConfig,
    /// PPO window: the number of most-recent steps each update trains on
    /// (truncated-BPTT over the growing test sequence).
    pub test_len: usize,
    /// Maximum accumulated test-case length. §IV-A grows each test case
    /// from the previous one by a single instruction for as long as
    /// possible; the cap (bounded by the code region) restarts the
    /// sequence, like the reset module but keeping the learned policy.
    pub body_cap: usize,
    /// Iterations without cumulative-coverage growth before the reset
    /// module re-initialises both models (§IV-B).
    pub reset_patience: u64,
    /// Enable the §IV-B instruction mask (ablation switch).
    pub use_instruction_mask: bool,
    /// Enable the §IV-B reset module (ablation switch).
    pub use_reset: bool,
    /// Use the predictor's value estimate in the advantage (Eq. 2); off
    /// replaces `V` with zero (ablation switch).
    pub use_value_baseline: bool,
    /// Normalise rewards (§V-B; ablation switch).
    pub normalize_rewards: bool,
    /// Candidate instructions sampled per step and screened by the
    /// coverage predictor (contribution 3: "the predictor evaluates the
    /// quality of these instructions" so that not every candidate needs
    /// hardware simulation). `1` disables screening (ablation switch).
    pub screen_candidates: usize,
    /// Per-head ε-exploration floor: the probability that a head output is
    /// drawn uniformly instead of from the policy, so rare instructions
    /// never disappear from the stream (the §IV-B curse-of-exploitation
    /// guard alongside the mask and reset module).
    pub exploration_epsilon: f32,
    /// RNG seed for all stochastic components.
    pub seed: u64,
}

impl HflConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper_default() -> HflConfig {
        HflConfig {
            generator: GeneratorConfig::paper_default(),
            predictor: PredictorConfig::paper_default(),
            reward: RewardConfig::paper_default(),
            ppo: PpoConfig::paper_default(),
            test_len: 24,
            body_cap: 256,
            reset_patience: 300,
            use_instruction_mask: true,
            use_reset: true,
            use_value_baseline: true,
            normalize_rewards: true,
            screen_candidates: 4,
            exploration_epsilon: 0.02,
            seed: 0,
        }
    }

    /// A smaller, faster configuration (same loop, narrower networks) for
    /// the default benchmark harnesses and tests.
    #[must_use]
    pub fn small() -> HflConfig {
        HflConfig {
            generator: GeneratorConfig::small(),
            predictor: PredictorConfig::small(),
            test_len: 24,
            body_cap: 192,
            reset_patience: 150,
            ..HflConfig::paper_default()
        }
    }

    /// Sets the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> HflConfig {
        self.seed = seed;
        self
    }
}

impl Default for HflConfig {
    fn default() -> Self {
        HflConfig::paper_default()
    }
}

/// A step awaiting its reward (emitted by `next_case`, completed by
/// `feedback`). Batched rounds speculatively chain several steps before
/// any feedback arrives, so these queue up in generation order.
#[derive(Debug, Clone)]
struct PendingStep {
    input: Tokens,
    action: crate::generator::SampledAction,
    mask: [bool; 7],
    v_t: f32,
    v_next: f32,
    /// Session snapshots from before this instruction was appended, so a
    /// non-terminating extension can be rolled back.
    undo_gen: GenSession,
    undo_value: ValueSession,
    undo_coverage: Option<CoverageSession>,
    /// Body length before this step's instruction was appended. Rolling a
    /// mid-round step back truncates to here, discarding the later steps
    /// of the speculative chain along with it.
    undo_body_len: usize,
}

/// Counters the loop exposes for monitoring and the benches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HflStats {
    /// Completed PPO updates (episodes).
    pub episodes: u64,
    /// Test cases emitted.
    pub cases: u64,
    /// Reset-module activations.
    pub resets: u64,
    /// Best per-case coverage fraction observed.
    pub best_coverage: f32,
    /// Mean probability ratio of the last update.
    pub last_mean_ratio: f32,
    /// Mean TD error of the last predictor update.
    pub last_td_error: f32,
}

/// The hardware fuzzing loop.
///
/// Implements [`Fuzzer`], so it drops into the same campaign harness as
/// the baselines: `next_case` extends the incremental test case by one
/// generated instruction (§IV-A test construction) and `feedback` performs
/// reward assignment, the PPO update (episode end) and reset-module
/// bookkeeping.
///
/// # Examples
///
/// ```
/// use hfl::baselines::{Feedback, Fuzzer};
/// use hfl::fuzzer::{HflConfig, HflFuzzer};
///
/// let mut cfg = HflConfig::small();
/// cfg.generator.hidden = 16;
/// cfg.predictor.hidden = 16;
/// let mut hfl = HflFuzzer::new(cfg);
/// let case = hfl.next_case();
/// hfl.feedback(&case, Feedback::scalar(true, 0.3));
/// ```
#[derive(Debug)]
pub struct HflFuzzer {
    cfg: HflConfig,
    rng: StdRng,
    generator: InstructionGenerator,
    predictor: ValuePredictor,
    gen_adam: Adam,
    pred_adam: Adam,
    normalizer: RewardNormalizer,
    session: GenSession,
    value_session: ValueSession,
    coverage_predictor: Option<CoveragePredictor>,
    coverage_session: Option<CoverageSession>,
    cov_adam: Adam,
    cumulative_bits: Vec<f32>,
    body: Vec<Instruction>,
    pending: VecDeque<PendingStep>,
    episode: Vec<EpisodeStep>,
    td_inputs: Vec<Tokens>,
    td_targets: Vec<f32>,
    stagnation: u64,
    consecutive_rollbacks: u32,
    stats: HflStats,
    sink: SinkHandle,
    /// Rewards of the current PPO window, parallel to `episode` (telemetry
    /// only: feeds `Event::PpoUpdate::reward_mean`).
    window_rewards: Vec<f32>,
}

impl HflFuzzer {
    /// Creates the loop with freshly initialised models.
    #[must_use]
    pub fn new(cfg: HflConfig) -> HflFuzzer {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let generator = InstructionGenerator::new(cfg.generator, &mut rng);
        let predictor = ValuePredictor::new(cfg.predictor, &mut rng);
        let session = generator.start_session();
        let value_session = predictor.start_session();
        HflFuzzer {
            gen_adam: Adam::new(cfg.generator.lr),
            pred_adam: Adam::new(cfg.predictor.lr),
            normalizer: RewardNormalizer::new(),
            cfg,
            rng,
            generator,
            predictor,
            session,
            value_session,
            coverage_predictor: None,
            coverage_session: None,
            cov_adam: Adam::new(cfg.predictor.lr),
            cumulative_bits: Vec::new(),
            body: Vec::new(),
            pending: VecDeque::new(),
            episode: Vec::new(),
            td_inputs: Vec::new(),
            td_targets: Vec::new(),
            stagnation: 0,
            consecutive_rollbacks: 0,
            stats: HflStats::default(),
            sink: SinkHandle::null(),
            window_rewards: Vec::new(),
        }
    }

    /// Loop statistics.
    #[must_use]
    pub fn stats(&self) -> HflStats {
        self.stats
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &HflConfig {
        &self.cfg
    }

    /// Read access to the generator (e.g. for persistence).
    #[must_use]
    pub fn generator(&self) -> &InstructionGenerator {
        &self.generator
    }

    /// Serialises the loop's complete learning state: RNG stream position,
    /// both models with their Adam moments, streaming LSTM sessions, the
    /// reward normaliser, the open PPO window and all counters. Only valid
    /// at a round boundary (no case awaiting feedback) — that is the
    /// invariant that makes a resumed campaign bit-identical.
    fn write_state<W: std::io::Write>(&self, w: &mut W) -> Result<(), PersistError> {
        if !self.pending.is_empty() {
            return Err(PersistError::Unsupported(
                "HFL checkpoint requires a round boundary",
            ));
        }
        self.cfg.save(w)?;
        persist::write_rng(w, &self.rng)?;
        self.generator.save(w)?;
        self.predictor.save(w)?;
        self.gen_adam.save(w)?;
        self.pred_adam.save(w)?;
        let (count, mean, m2) = self.normalizer.state();
        write_u64(w, count)?;
        write_f64(w, mean)?;
        write_f64(w, m2)?;
        self.session.state().save(w)?;
        self.session.next_input.save(w)?;
        self.value_session.state().save(w)?;
        write_f32(w, self.value_session.value())?;
        match &self.coverage_predictor {
            Some(cp) => {
                write_bool(w, true)?;
                cp.save(w)?;
            }
            None => write_bool(w, false)?,
        }
        match &self.coverage_session {
            Some(cs) => {
                write_bool(w, true)?;
                cs.state().save(w)?;
            }
            None => write_bool(w, false)?,
        }
        self.cov_adam.save(w)?;
        write_f32_vec(w, &self.cumulative_bits)?;
        persist::write_program(w, &self.body)?;
        write_usize(w, self.episode.len())?;
        for step in &self.episode {
            step.save(w)?;
        }
        persist::write_tokens_seq(w, &self.td_inputs)?;
        write_f32_vec(w, &self.td_targets)?;
        write_u64(w, self.stagnation)?;
        write_u32(w, self.consecutive_rollbacks)?;
        self.stats.save(w)?;
        write_f32_vec(w, &self.window_rewards)
    }

    /// Restores state written by [`HflFuzzer::write_state`]. The attached
    /// telemetry sink is kept; everything else is replaced.
    fn read_state<R: std::io::Read>(&mut self, r: &mut R) -> Result<(), PersistError> {
        use hfl_nn::persist::corrupt;
        self.cfg = HflConfig::load(r)?;
        self.rng = persist::read_rng(r)?;
        self.generator = InstructionGenerator::load(r)?;
        self.predictor = ValuePredictor::load(r)?;
        self.gen_adam = Adam::load(r)?;
        self.pred_adam = Adam::load(r)?;
        let count = read_u64(r)?;
        let mean = read_f64(r)?;
        let m2 = read_f64(r)?;
        self.normalizer = RewardNormalizer::from_state(count, mean, m2);
        let gen_state = LstmState::load(r)?;
        let next_input = Tokens::load(r)?;
        self.session = GenSession::from_parts(gen_state, next_input);
        let value_state = LstmState::load(r)?;
        let last_value = read_f32(r)?;
        self.value_session = ValueSession::from_parts(value_state, last_value);
        self.coverage_predictor = if read_bool(r)? {
            Some(CoveragePredictor::load(r)?)
        } else {
            None
        };
        self.coverage_session = if read_bool(r)? {
            Some(CoverageSession::from_parts(LstmState::load(r)?))
        } else {
            None
        };
        if self.coverage_predictor.is_some() != self.coverage_session.is_some() {
            return Err(corrupt("coverage predictor and session must pair up"));
        }
        self.cov_adam = Adam::load(r)?;
        self.cumulative_bits = read_f32_vec(r)?;
        self.body = persist::read_program(r)?;
        let n = read_usize(r, 1 << 20, "episode length")?;
        self.episode = (0..n)
            .map(|_| EpisodeStep::load(r))
            .collect::<Result<_, _>>()?;
        self.td_inputs = persist::read_tokens_seq(r)?;
        self.td_targets = read_f32_vec(r)?;
        self.stagnation = read_u64(r)?;
        self.consecutive_rollbacks = read_u32(r)?;
        self.stats = HflStats::load(r)?;
        self.window_rewards = read_f32_vec(r)?;
        self.pending.clear();
        Ok(())
    }

    /// Samples up to `screen_candidates` instructions from the policy and
    /// commits the one the coverage predictor scores highest on *expected
    /// new coverage* — the paper's fast predictor-in-the-loop feedback.
    /// Falls back to plain sampling until the predictor has data.
    fn generate_screened(
        &mut self,
    ) -> (
        crate::correction::Corrected,
        crate::generator::SampledAction,
    ) {
        let hidden = self.generator.advance(&mut self.session);
        let k = self.cfg.screen_candidates.max(1);
        let screening_ready = k > 1 && self.coverage_predictor.is_some() && self.stats.cases >= 32;
        if !screening_ready {
            let (corrected, action) = self.generator.sample_with_exploration(
                &hidden,
                self.cfg.exploration_epsilon,
                &mut self.rng,
            );
            self.generator.commit(&mut self.session, &corrected);
            if let (Some(cp), Some(cs)) = (&self.coverage_predictor, &mut self.coverage_session) {
                cp.step(cs, &Tokens::from_instruction(&corrected.instruction));
            }
            return (corrected, action);
        }
        // Sample all k candidates up front. Screening itself consumes no
        // randomness (`peek_batch` is a pure forward pass), so the RNG
        // stream is identical to the historical sample-then-peek
        // interleaving — determinism survives both the batching and the
        // dedup below.
        let mut candidates = Vec::with_capacity(k);
        for _ in 0..k {
            candidates.push(self.generator.sample_with_exploration(
                &hidden,
                self.cfg.exploration_epsilon,
                &mut self.rng,
            ));
        }
        // De-duplicate by corrected token before scoring: repeated
        // candidates would produce identical probability maps, so each
        // distinct token goes through the predictor exactly once. `slot[c]`
        // maps candidate `c` to its score in `distinct` order.
        let mut distinct: Vec<Tokens> = Vec::with_capacity(k);
        let mut slot = Vec::with_capacity(k);
        for (corrected, _) in &candidates {
            let token = Tokens::from_instruction(&corrected.instruction);
            let idx = distinct
                .iter()
                .position(|t| *t == token)
                .unwrap_or_else(|| {
                    distinct.push(token);
                    distinct.len() - 1
                });
            slot.push(idx);
        }
        // One batched peek scores every distinct candidate as a
        // hypothetical continuation of the shared predictor session.
        let prob_batch = {
            let cp = self.coverage_predictor.as_mut().expect("checked above");
            let cs = self
                .coverage_session
                .as_ref()
                .expect("paired with predictor");
            cp.peek_batch(cs, &distinct)
        };
        let scores: Vec<f32> = prob_batch
            .iter()
            .map(|probs| Self::screening_score(probs, &self.cumulative_bits))
            .collect();
        // Argmax in sample order with strict `>`: ties keep the earliest
        // candidate, exactly like the sequential loop did (duplicates score
        // equal, so dedup cannot change the winner).
        let mut best = 0;
        for c in 1..candidates.len() {
            if scores[slot[c]] > scores[slot[best]] {
                best = c;
            }
        }
        let (corrected, action) = candidates.swap_remove(best);
        self.generator.commit(&mut self.session, &corrected);
        let token = Tokens::from_instruction(&corrected.instruction);
        let (cp, cs) = (
            self.coverage_predictor.as_ref().expect("checked"),
            self.coverage_session.as_mut().expect("checked"),
        );
        cp.step(cs, &token);
        (corrected, action)
    }

    /// Expected number of *new* coverage points a candidate unlocks:
    /// `Σ pᵢ · (1 − cumᵢ)`. The predictor's probability map and the
    /// cumulative-coverage map must line up point-for-point; a length
    /// disagreement (e.g. a checkpoint restored against a DUT with a
    /// different coverage map) used to be silently zip-truncated, quietly
    /// corrupting every screening decision, so it is now a hard error.
    fn screening_score(probs: &[f32], cumulative: &[f32]) -> f32 {
        assert!(
            probs.len() == cumulative.len(),
            "coverage predictor emitted {} points but cumulative coverage tracks {}; \
             refusing to screen on a truncated map",
            probs.len(),
            cumulative.len()
        );
        probs
            .iter()
            .zip(cumulative)
            .map(|(p, cum)| p * (1.0 - cum))
            .sum()
    }

    /// Online training of the coverage predictor on the executed case's
    /// per-point labels (lazy-initialised on the first labelled feedback).
    /// `case_len` is the executed case's body length — during a batched
    /// round `self.body` already carries later speculative extensions.
    fn train_coverage_predictor(&mut self, bits: &[u8], case_len: usize) {
        if self.coverage_predictor.is_none() {
            self.coverage_predictor = Some(CoveragePredictor::new(
                self.cfg.predictor,
                bits.len(),
                &mut self.rng,
            ));
            self.coverage_session = Some(
                self.coverage_predictor
                    .as_ref()
                    .expect("just set")
                    .start_session(),
            );
            self.cumulative_bits = vec![0.0; bits.len()];
        }
        for (cum, &b) in self.cumulative_bits.iter_mut().zip(bits) {
            if b != 0 {
                *cum = 1.0;
            }
        }
        let labels: Vec<f32> = bits.iter().map(|&b| f32::from(b)).collect();
        // Train on the recent suffix: the growing test sequence would make
        // whole-body training quadratic in campaign length.
        let window = self.cfg.test_len.max(8);
        let case = &self.body[..case_len.min(self.body.len())];
        let start = case.len().saturating_sub(window);
        let sequence = Tokens::sequence_with_bos(&case[start..]);
        // Score the predictor against the realised bits *before* it trains
        // on them. `predict` is a pure forward pass and the whole block is
        // sink-gated, so telemetry never perturbs the loop's state or RNG.
        if self.sink.enabled() {
            if let Some(cp) = &self.coverage_predictor {
                let probs = cp.predict(&sequence);
                // `agree` is counted over the zipped pairs, so the
                // denominator must be that same pair count — a mismatch
                // here would silently deflate (or inflate) the reported
                // accuracy.
                assert_eq!(
                    probs.len(),
                    bits.len(),
                    "predictor evaluated {} points against {} realised bits",
                    probs.len(),
                    bits.len()
                );
                let mut predicted_hits = 0u64;
                let mut realized_hits = 0u64;
                let mut agree = 0u64;
                for (p, &b) in probs.iter().zip(bits) {
                    let hit = *p > 0.5;
                    predicted_hits += u64::from(hit);
                    realized_hits += u64::from(b != 0);
                    agree += u64::from(hit == (b != 0));
                }
                self.sink.emit(&Event::PredictorEval {
                    case: self.stats.cases,
                    accuracy: agree as f64 / probs.len().max(1) as f64,
                    predicted_hits,
                    realized_hits,
                });
            }
        }
        if let Some(cp) = &mut self.coverage_predictor {
            cp.train_case(&sequence, &labels, &mut self.cov_adam);
        }
    }

    /// Emits one [`Event::PpoUpdate`] (sink-gated; pure observation).
    fn emit_ppo_update(&self, update: crate::generator::UpdateStats) {
        if !self.sink.enabled() {
            return;
        }
        let reward_mean = if self.window_rewards.is_empty() {
            0.0
        } else {
            self.window_rewards.iter().sum::<f32>() / self.window_rewards.len() as f32
        };
        self.sink.emit(&Event::PpoUpdate {
            case: self.stats.cases,
            episode: self.stats.episodes,
            mean_ratio: f64::from(update.mean_ratio),
            approx_kl: f64::from(update.approx_kl),
            td_loss: f64::from(self.stats.last_td_error),
            reward_mean: f64::from(reward_mean),
        });
    }

    fn finish_episode(&mut self) {
        if !self.episode.is_empty() {
            let stats =
                self.generator
                    .ppo_update(&self.episode, self.cfg.ppo.epsilon, &mut self.gen_adam);
            self.stats.last_mean_ratio = stats.mean_ratio;
            self.stats.last_td_error = self.predictor.train_episode(
                &self.td_inputs,
                &self.td_targets,
                &mut self.pred_adam,
            );
            self.stats.episodes += 1;
            self.emit_ppo_update(stats);
        }
        self.episode.clear();
        self.td_inputs.clear();
        self.td_targets.clear();
        self.window_rewards.clear();
        self.body.clear();
        self.session = self.generator.start_session();
        self.value_session = self.predictor.start_session();
        self.coverage_session = self
            .coverage_predictor
            .as_ref()
            .map(CoveragePredictor::start_session);
        // Pending steps extended the body this call just cleared; their
        // feedbacks (if any are still in flight) must be ignored.
        self.pending.clear();
    }

    fn activate_reset_module(&mut self) {
        self.generator.reset(&mut self.rng);
        self.predictor.reset(&mut self.rng);
        self.gen_adam = Adam::new(self.cfg.generator.lr);
        self.pred_adam = Adam::new(self.cfg.predictor.lr);
        self.normalizer.reset();
        self.stagnation = 0;
        self.stats.resets += 1;
        self.finish_only_state();
    }

    /// Clears episode state without a model update (post-reset). The
    /// coverage predictor is re-initialised with the rest of φ.
    fn finish_only_state(&mut self) {
        self.episode.clear();
        self.td_inputs.clear();
        self.td_targets.clear();
        self.window_rewards.clear();
        self.body.clear();
        self.session = self.generator.start_session();
        self.value_session = self.predictor.start_session();
        self.coverage_predictor = None;
        self.coverage_session = None;
        self.cov_adam = Adam::new(self.cfg.predictor.lr);
        self.pending.clear();
    }
}

impl Fuzzer for HflFuzzer {
    fn name(&self) -> &'static str {
        "HFL"
    }

    fn next_case(&mut self) -> TestBody {
        // V(S_t): the critic's estimate before the new instruction.
        let v_t = if self.cfg.use_value_baseline {
            if self.body.is_empty() {
                // Prime the critic with the BOS token at episode start.
                self.predictor.step(&mut self.value_session, &Tokens::bos())
            } else {
                self.value_session.value()
            }
        } else {
            0.0
        };
        let input = self.session.next_input;
        let undo_gen = self.session.clone();
        let undo_value = self.value_session.clone();
        let undo_coverage = self.coverage_session.clone();
        let (corrected, action) = self.generate_screened();
        let v_next = if self.cfg.use_value_baseline {
            self.predictor.step(
                &mut self.value_session,
                &Tokens::from_instruction(&corrected.instruction),
            )
        } else {
            0.0
        };
        let mask = if self.cfg.use_instruction_mask {
            corrected.mask.as_array()
        } else {
            [true; 7]
        };
        self.pending.push_back(PendingStep {
            input,
            action,
            mask,
            v_t,
            v_next,
            undo_gen,
            undo_value,
            undo_coverage,
            undo_body_len: self.body.len(),
        });
        self.body.push(corrected.instruction);
        self.stats.cases += 1;
        TestBody::Asm(self.body.clone())
    }

    /// Speculatively chains up to `n` incremental extensions for one
    /// execution round — case `i+1` assumes case `i` terminates. A
    /// rollback or episode boundary in the feedback phase invalidates the
    /// rest of the chain (their queued steps are dropped, and the
    /// campaign's remaining feedbacks for the round are ignored). The
    /// round stops early at the body cap, where feedback closes the
    /// episode. With `n = 1` this is exactly the sequential loop.
    fn next_round(&mut self, n: usize) -> Vec<TestBody> {
        let cap = self.cfg.body_cap.min(max_body());
        let mut round = Vec::with_capacity(n.max(1));
        for _ in 0..n.max(1) {
            round.push(self.next_case());
            if self.body.len() >= cap {
                break;
            }
        }
        round
    }

    fn feedback(&mut self, _body: &TestBody, feedback: Feedback) {
        let Some(pending) = self.pending.pop_front() else {
            return;
        };
        if !feedback.terminated {
            // §IV-A's constructor keeps every test case executable: a
            // non-terminating extension is rolled back, and the action that
            // caused it is penalised so the policy avoids runaway loops.
            // Later steps of a speculative chain extended the rolled-back
            // body, so they are discarded with it.
            self.body.truncate(pending.undo_body_len);
            self.pending.clear();
            self.session = pending.undo_gen;
            self.value_session = pending.undo_value;
            // The snapshot predates the predictor when an earlier feedback
            // of this very round lazily created it; restoring `None` next
            // to a live predictor would poison every later screening call,
            // so re-pair with a fresh session instead.
            self.coverage_session = pending.undo_coverage.or_else(|| {
                self.coverage_predictor
                    .as_ref()
                    .map(CoveragePredictor::start_session)
            });
            let penalty = if self.cfg.normalize_rewards {
                self.normalizer.normalize(0.0)
            } else {
                0.0
            };
            let adv = advantage(
                penalty - 0.5,
                pending.v_next,
                pending.v_t,
                self.cfg.ppo.gamma,
            );
            self.episode.push(EpisodeStep {
                input: pending.input,
                action: pending.action,
                mask: pending.mask,
                advantage: adv,
            });
            self.td_inputs.push(pending.input);
            self.td_targets.push(penalty - 0.5);
            self.window_rewards.push(penalty - 0.5);
            self.stagnation += 1;
            self.consecutive_rollbacks += 1;
            if self.consecutive_rollbacks >= 8 {
                // The sequence's runtime sits at the step budget: no
                // extension can terminate any more. Restart the test
                // sequence (policy intact) instead of stalling until the
                // reset module fires.
                self.consecutive_rollbacks = 0;
                self.finish_episode();
            }
            return;
        }
        self.consecutive_rollbacks = 0;
        let case_len = pending.undo_body_len + 1;
        if let Some(bits) = feedback.case_bits.clone() {
            self.train_coverage_predictor(&bits, case_len);
        }
        // Eq. (1): reward assignment. The r_bonus is granted when the test
        // case "achieves the highest hardware coverage observed so far" —
        // read cumulatively: a case that grows cumulative coverage sets a
        // new high-water mark and earns the bonus. This is the discovery
        // signal that drives the generator toward untouched hardware
        // states.
        if feedback.coverage > self.stats.best_coverage {
            self.stats.best_coverage = feedback.coverage;
        }
        let raw = self
            .cfg
            .reward
            .reward(feedback.coverage, feedback.gained_coverage);
        let reward = if self.cfg.normalize_rewards {
            self.normalizer.normalize(raw)
        } else {
            raw
        };
        // Eq. (2): advantage against the critic baseline.
        let adv = advantage(reward, pending.v_next, pending.v_t, self.cfg.ppo.gamma);
        self.episode.push(EpisodeStep {
            input: pending.input,
            action: pending.action,
            mask: pending.mask,
            advantage: adv,
        });
        // Eq. (3) target for the critic.
        self.td_inputs.push(pending.input);
        self.td_targets
            .push(reward + self.cfg.ppo.gamma * pending.v_next);
        self.window_rewards.push(reward);

        // Reset-module bookkeeping (cumulative coverage stagnation).
        if feedback.gained_coverage {
            self.stagnation = 0;
        } else {
            self.stagnation += 1;
        }
        if self.cfg.use_reset && self.stagnation >= self.cfg.reset_patience {
            self.activate_reset_module();
            return;
        }
        // Keep the PPO window to the most recent steps (truncated BPTT
        // over the ever-growing test sequence).
        while self.episode.len() > self.cfg.test_len {
            self.episode.remove(0);
            self.td_inputs.remove(0);
            self.td_targets.remove(0);
            self.window_rewards.remove(0);
        }
        if case_len >= self.cfg.body_cap.min(max_body()) {
            // The code region is full: close the episode and start a fresh
            // test sequence with the learned policy intact. (`case_len`,
            // not `self.body.len()`: a batched round may already have
            // chained speculative extensions past this case.)
            self.finish_episode();
        } else {
            // Real-time fine-tuning (§IV-B: the framework "fine-tunes the
            // instruction generator in real time"): every iteration updates
            // both models over the recent window. Re-visited steps keep
            // their sampling-time log-probabilities, so the PPO
            // ratio/clipping provides the trust region exactly as Eq. (4)
            // intends.
            let stats =
                self.generator
                    .ppo_update(&self.episode, self.cfg.ppo.epsilon, &mut self.gen_adam);
            self.stats.last_mean_ratio = stats.mean_ratio;
            self.stats.last_td_error = self.predictor.train_episode(
                &self.td_inputs,
                &self.td_targets,
                &mut self.pred_adam,
            );
            self.emit_ppo_update(stats);
        }
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    fn save_state(&self, mut w: &mut dyn std::io::Write) -> Result<(), PersistError> {
        self.write_state(&mut w)
    }

    fn load_state(&mut self, mut r: &mut dyn std::io::Read) -> Result<(), PersistError> {
        self.read_state(&mut r)
    }
}

/// The largest body the code region can hold.
fn max_body() -> usize {
    use std::sync::OnceLock;
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(hfl_grm::Program::max_body_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HflConfig {
        let mut cfg = HflConfig::small();
        cfg.generator.hidden = 16;
        cfg.predictor.hidden = 16;
        cfg.test_len = 4;
        cfg.body_cap = 4;
        cfg.reset_patience = 10;
        cfg
    }

    fn bits_feedback(gained: bool, coverage: f32, bits: Vec<u8>) -> Feedback {
        Feedback {
            case_bits: Some(std::sync::Arc::new(bits)),
            ..Feedback::scalar(gained, coverage)
        }
    }

    /// Drives a fuzzer with labelled coverage until screening is armed
    /// (predictor initialised and ≥ 32 cases observed).
    fn armed_for_screening(seed: u64) -> HflFuzzer {
        let mut cfg = tiny();
        cfg.use_reset = false;
        cfg.body_cap = 8;
        let mut hfl = HflFuzzer::new(cfg.with_seed(seed));
        for i in 0..36u64 {
            let b = hfl.next_case();
            let bits: Vec<u8> = (0..16).map(|j| u8::from((i + j) % 3 == 0)).collect();
            hfl.feedback(&b, bits_feedback(i % 4 == 0, 0.3, bits));
        }
        assert!(hfl.stats.cases >= 32, "screening must be armed");
        assert!(hfl.coverage_predictor.is_some());
        hfl
    }

    fn drive(hfl: &mut HflFuzzer, n: usize, coverage: impl Fn(u64) -> f32) {
        for i in 0..n {
            let body = hfl.next_case();
            assert!(!body.is_empty());
            let c = coverage(i as u64);
            hfl.feedback(&body, Feedback::scalar(c > 0.5, c));
        }
    }

    #[test]
    fn paper_default_config() {
        let cfg = HflConfig::paper_default();
        assert_eq!(cfg.generator.hidden, 256);
        assert!((cfg.reward.alpha - 0.2).abs() < 1e-9);
        assert!((cfg.ppo.gamma - 0.1).abs() < 1e-9);
        assert!(cfg.use_instruction_mask && cfg.use_reset);
    }

    #[test]
    fn incremental_test_construction() {
        let mut hfl = HflFuzzer::new(tiny());
        let a = hfl.next_case();
        hfl.feedback(&a, Feedback::scalar(true, 0.1));
        let b = hfl.next_case();
        assert_eq!(a.len() + 1, b.len(), "each case adds one instruction");
        // The previous prefix is preserved.
        let (TestBody::Asm(a), TestBody::Asm(b)) = (&a, &b) else {
            unreachable!()
        };
        assert_eq!(&b[..a.len()], &a[..]);
    }

    #[test]
    fn episodes_trigger_ppo_updates() {
        let mut hfl = HflFuzzer::new(tiny());
        drive(&mut hfl, 12, |i| 0.6 + 0.01 * (i % 5) as f32);
        let stats = hfl.stats();
        assert_eq!(stats.cases, 12);
        assert_eq!(
            stats.episodes, 3,
            "body_cap=4 -> a sequence restart every 4 cases"
        );
        assert!(stats.best_coverage > 0.6);
    }

    #[test]
    fn reset_module_fires_on_stagnation() {
        let mut hfl = HflFuzzer::new(tiny());
        drive(&mut hfl, 30, |_| 0.1); // never gains coverage
        assert!(hfl.stats().resets >= 1, "stagnation must trigger a reset");
    }

    #[test]
    fn reset_module_can_be_disabled() {
        let mut cfg = tiny();
        cfg.use_reset = false;
        let mut hfl = HflFuzzer::new(cfg);
        drive(&mut hfl, 30, |_| 0.1);
        assert_eq!(hfl.stats().resets, 0);
    }

    #[test]
    fn new_episode_restarts_the_body() {
        let mut hfl = HflFuzzer::new(tiny());
        drive(&mut hfl, 4, |_| 0.9); // exactly one episode
        let body = hfl.next_case();
        assert_eq!(body.len(), 1, "fresh episode starts from scratch");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut hfl = HflFuzzer::new(tiny().with_seed(99));
            let mut cases = Vec::new();
            for i in 0..8 {
                let b = hfl.next_case();
                cases.push(b.clone());
                hfl.feedback(&b, Feedback::scalar(i % 2 == 0, 0.2));
            }
            cases
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn feedback_without_pending_case_is_ignored() {
        let mut hfl = HflFuzzer::new(tiny());
        hfl.feedback(&TestBody::Asm(vec![]), Feedback::scalar(false, 0.0));
        assert_eq!(hfl.stats().cases, 0);
    }

    #[test]
    fn round_of_one_matches_the_sequential_loop() {
        let mk = |batched: bool| {
            let mut hfl = HflFuzzer::new(tiny().with_seed(5));
            let mut cases = Vec::new();
            for i in 0..8 {
                let round = if batched {
                    hfl.next_round(1)
                } else {
                    vec![hfl.next_case()]
                };
                for b in round {
                    hfl.feedback(&b, Feedback::scalar(i % 2 == 0, 0.2));
                    cases.push(b);
                }
            }
            cases
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn batched_round_chains_incrementally_and_stops_at_the_cap() {
        let mut hfl = HflFuzzer::new(tiny()); // body_cap = 4
        let round = hfl.next_round(8);
        assert_eq!(round.len(), 4, "the cap bounds the chain");
        for (i, body) in round.iter().enumerate() {
            assert_eq!(body.len(), i + 1, "case {i} extends its predecessor by one");
        }
    }

    #[test]
    fn rollback_mid_round_invalidates_the_rest_of_the_chain() {
        let mut cfg = tiny();
        cfg.body_cap = 16;
        let mut hfl = HflFuzzer::new(cfg);
        let round = hfl.next_round(4);
        assert_eq!(round.len(), 4);
        // The first case terminates; the second does not and is rolled
        // back, which invalidates the speculative extensions behind it.
        hfl.feedback(&round[0], Feedback::scalar(true, 0.4));
        hfl.feedback(
            &round[1],
            Feedback {
                terminated: false,
                ..Feedback::scalar(false, 0.0)
            },
        );
        hfl.feedback(&round[2], Feedback::scalar(true, 0.9));
        hfl.feedback(&round[3], Feedback::scalar(true, 0.9));
        assert!(
            hfl.stats().best_coverage < 0.5,
            "stale feedbacks for the dropped chain must be ignored"
        );
        // The next case re-extends the surviving one-instruction prefix.
        let next = hfl.next_case();
        assert_eq!(
            next.len(),
            2,
            "body truncated back to the terminated prefix"
        );
        let (TestBody::Asm(prev), TestBody::Asm(next_b)) = (&round[0], &next) else {
            unreachable!()
        };
        assert_eq!(&next_b[..1], &prev[..]);
    }

    #[test]
    fn screened_generation_is_seed_deterministic() {
        let mk = || {
            let mut hfl = armed_for_screening(42);
            let mut cases = Vec::new();
            for i in 0..12u64 {
                let b = hfl.next_case();
                cases.push(b.clone());
                let bits: Vec<u8> = (0..16).map(|j| u8::from((i + j) % 2 == 0)).collect();
                hfl.feedback(&b, bits_feedback(i % 3 == 0, 0.4, bits));
            }
            cases
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn batched_screening_matches_the_sequential_reference() {
        // Two identically seeded and identically driven fuzzers hold
        // bit-identical state. One runs the batched screening path; on the
        // other we replay the historical sequential algorithm (one peek
        // per candidate, strict-greater argmax) by hand. The committed
        // instruction must agree — batching plus de-duplication is a pure
        // reassociation-safe refactor.
        let mut real = armed_for_screening(123);
        let mut reference = armed_for_screening(123);
        let body = real.next_case();
        let TestBody::Asm(insns) = &body else {
            unreachable!()
        };
        let chosen = *insns.last().expect("non-empty case");
        let hidden = reference.generator.advance(&mut reference.session);
        let k = reference.cfg.screen_candidates.max(1);
        assert!(k > 1, "screening must sample multiple candidates");
        let cp = reference.coverage_predictor.as_ref().expect("armed");
        let cs = reference.coverage_session.as_ref().expect("armed");
        let mut best: Option<(f32, Instruction)> = None;
        for _ in 0..k {
            let (corrected, _) = reference.generator.sample_with_exploration(
                &hidden,
                reference.cfg.exploration_epsilon,
                &mut reference.rng,
            );
            let token = Tokens::from_instruction(&corrected.instruction);
            let probs = cp.peek(cs, &token);
            let score: f32 = probs
                .iter()
                .zip(&reference.cumulative_bits)
                .map(|(p, cum)| p * (1.0 - cum))
                .sum();
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, corrected.instruction));
            }
        }
        assert_eq!(chosen, best.expect("k >= 1").1);
    }

    #[test]
    #[should_panic(expected = "refusing to screen")]
    fn screening_panics_on_truncated_coverage_map() {
        let mut hfl = armed_for_screening(7);
        // Simulate a stale checkpoint whose cumulative map no longer
        // matches the predictor's output width.
        hfl.cumulative_bits.pop();
        let _ = hfl.next_case();
    }

    #[test]
    fn predictor_eval_uses_the_full_map_as_denominator() {
        use crate::obs::RingSink;
        let mut cfg = tiny();
        cfg.use_reset = false;
        let mut hfl = HflFuzzer::new(cfg.with_seed(9));
        let ring = std::sync::Arc::new(RingSink::new(4096));
        hfl.attach_sink(SinkHandle::new(ring.clone()));
        // All 32 points hit every case: realised hits pin the map size, so
        // the accuracy must equal predicted_hits / 32 exactly.
        for _ in 0..6 {
            let b = hfl.next_case();
            hfl.feedback(&b, bits_feedback(true, 0.5, vec![1u8; 32]));
        }
        let evals: Vec<(f64, u64, u64)> = ring
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PredictorEval {
                    accuracy,
                    predicted_hits,
                    realized_hits,
                    ..
                } => Some((*accuracy, *predicted_hits, *realized_hits)),
                _ => None,
            })
            .collect();
        assert!(!evals.is_empty(), "labelled feedback must emit evals");
        for (accuracy, predicted_hits, realized_hits) in evals {
            assert_eq!(realized_hits, 32);
            assert!(
                (accuracy - predicted_hits as f64 / 32.0).abs() < 1e-12,
                "accuracy {accuracy} must be predicted agreement over the \
                 full 32-point map (predicted_hits {predicted_hits})"
            );
        }
    }
}
