//! The shared control surface of a running campaign or fleet.
//!
//! A [`StopHandle`] is a cloneable handle an operator (or the
//! `hfl-serve` daemon) holds while [`crate::campaign::run_campaign`] /
//! [`crate::fleet::run_fleet`] executes on another thread. It carries two
//! level-triggered requests, both honoured at the next round (campaign)
//! or epoch (fleet) boundary — the only points where every fuzzer's
//! pending queues are empty and a snapshot is bit-identically resumable:
//!
//! - **stop**: finish the current round/epoch, write a final checkpoint
//!   (when a [`crate::campaign::CheckpointPolicy`] is attached) and
//!   return with `completed = false`;
//! - **checkpoint-now**: write a snapshot at the next boundary without
//!   stopping (a no-op when no checkpoint policy is attached).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cloneable stop/checkpoint-now control handle (see the module docs).
///
/// # Examples
///
/// ```
/// use hfl::control::StopHandle;
///
/// let handle = StopHandle::new();
/// let runner_side = handle.clone();
/// assert!(!runner_side.stop_requested());
/// handle.request_stop();
/// assert!(runner_side.stop_requested());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StopHandle {
    inner: Arc<Flags>,
}

#[derive(Debug, Default)]
struct Flags {
    stop: AtomicBool,
    checkpoint: AtomicBool,
}

impl StopHandle {
    /// A fresh handle with no pending requests.
    #[must_use]
    pub fn new() -> StopHandle {
        StopHandle::default()
    }

    /// Requests a graceful stop (level-triggered; idempotent).
    pub fn request_stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop was requested.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Requests one snapshot at the next round/epoch boundary.
    pub fn request_checkpoint(&self) {
        self.inner.checkpoint.store(true, Ordering::SeqCst);
    }

    /// Whether a checkpoint-now request is pending (without claiming it).
    #[must_use]
    pub fn checkpoint_requested(&self) -> bool {
        self.inner.checkpoint.load(Ordering::SeqCst)
    }

    /// Claims a pending checkpoint-now request, if any (the runner calls
    /// this once per boundary; the request is edge-consumed so one
    /// request yields exactly one snapshot).
    #[must_use]
    pub fn take_checkpoint_request(&self) -> bool {
        self.inner.checkpoint.swap(false, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_shared_across_clones_and_checkpoint_is_edge_consumed() {
        let a = StopHandle::new();
        let b = a.clone();
        assert!(!a.stop_requested() && !b.checkpoint_requested());
        b.request_stop();
        assert!(a.stop_requested());
        a.request_checkpoint();
        assert!(b.checkpoint_requested());
        assert!(b.take_checkpoint_request());
        assert!(!b.take_checkpoint_request(), "claimed exactly once");
        assert!(!a.checkpoint_requested());
    }
}
