//! Differential testing and mismatch signature extraction (§V-B).
//!
//! Every test case runs on both the golden reference model (`hfl-grm`) and
//! the DUT (`hfl-dut`). Traces are compared entry by entry; the first
//! divergence and any final-state difference become [`Mismatch`]es. The
//! *signature extraction algorithm* then derives a register-independent
//! signature per mismatch (opcode + mismatch class + exception causes) so
//! that different manifestations of the same bug dedup to a single report —
//! the paper's device for taming "numerous mismatches, duplicates, or
//! false positives".

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use hfl_grm::cpu::HaltReason;
use hfl_grm::{ArchSnapshot, Trace};
use hfl_riscv::{decode, Opcode};

/// Classification of a GRM/DUT divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MismatchKind {
    /// A destination-register write differs (register file or value).
    RegWrite,
    /// A data-memory operation differs (address, size or stored value).
    MemOp,
    /// One side trapped and the other did not, or the causes differ.
    Trap {
        /// The GRM's exception cause, if it trapped.
        grm_cause: Option<u64>,
        /// The DUT's exception cause, if it trapped.
        dut_cause: Option<u64>,
    },
    /// The traces diverge in control flow (different pc).
    ControlFlow,
    /// The DUT crashed (e.g. the V1 cache-line defect) while the GRM ran on.
    Crash,
    /// Traces matched but the final architectural state differs.
    FinalState {
        /// Which state component differs (`"x"`, `"f"`, `"fcsr"`, …).
        field: &'static str,
    },
}

/// One observed divergence between the GRM and the DUT.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// What diverged.
    pub kind: MismatchKind,
    /// Program counter of the diverging instruction (0 for final-state
    /// mismatches).
    pub pc: u64,
    /// Raw instruction word at the divergence.
    pub word: u32,
    /// Decoded opcode, when the word decodes.
    pub opcode: Option<Opcode>,
    /// Human-readable detail.
    pub detail: String,
}

impl Mismatch {
    /// The register-independent signature (§V-B): opcode mnemonic +
    /// mismatch class + exception causes, hashed. Register *numbers* and
    /// concrete values are deliberately excluded so that the same bug
    /// triggered through different registers yields one signature.
    #[must_use]
    pub fn signature(&self) -> Signature {
        let mut hasher = DefaultHasher::new();
        self.opcode.map(Opcode::mnemonic).hash(&mut hasher);
        self.kind.hash(&mut hasher);
        Signature(hasher.finish())
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = self.opcode.map_or("<raw>", Opcode::mnemonic);
        write!(
            f,
            "[{:?}] pc={:#x} op={} {}",
            self.kind, self.pc, op, self.detail
        )
    }
}

/// A deduplicated mismatch signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub u64);

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:016x}", self.0)
    }
}

/// The growing set of unique mismatch signatures seen during a campaign.
#[derive(Debug, Clone, Default)]
pub struct SignatureSet {
    seen: HashSet<Signature>,
    /// Total mismatches observed (including duplicates).
    pub total_mismatches: u64,
}

impl SignatureSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> SignatureSet {
        SignatureSet::default()
    }

    /// Records a mismatch; returns `true` when its signature is new.
    pub fn insert(&mut self, mismatch: &Mismatch) -> bool {
        self.total_mismatches += 1;
        self.seen.insert(mismatch.signature())
    }

    /// Number of unique signatures.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.seen.len()
    }

    /// Whether a signature has been seen.
    #[must_use]
    pub fn contains(&self, sig: Signature) -> bool {
        self.seen.contains(&sig)
    }

    /// The unique signatures, sorted (checkpointing needs a stable order).
    #[must_use]
    pub fn sorted_signatures(&self) -> Vec<Signature> {
        let mut sigs: Vec<Signature> = self.seen.iter().copied().collect();
        sigs.sort_unstable();
        sigs
    }

    /// Rebuilds a set from checkpointed parts.
    #[must_use]
    pub fn from_parts(
        signatures: impl IntoIterator<Item = Signature>,
        total_mismatches: u64,
    ) -> SignatureSet {
        SignatureSet {
            seen: signatures.into_iter().collect(),
            total_mismatches,
        }
    }
}

/// Compares a GRM and a DUT execution of the same program.
///
/// The comparison stops at the first trace divergence (later state is
/// tainted); if the traces agree in full, final architectural state is
/// compared field by field. The `fcsr` comparison is what exposes
/// flag-only bugs like the paper's V4.
#[must_use]
pub fn compare(
    grm_trace: &Trace,
    grm_halt: HaltReason,
    grm_arch: &ArchSnapshot,
    dut_trace: &Trace,
    dut_halt: HaltReason,
    dut_arch: &ArchSnapshot,
) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for (g, d) in grm_trace.iter().zip(dut_trace.iter()) {
        if g.pc != d.pc {
            out.push(Mismatch {
                kind: MismatchKind::ControlFlow,
                pc: g.pc,
                word: g.word,
                opcode: decode(g.word).ok().map(|i| i.opcode),
                detail: format!("grm at {:#x}, dut at {:#x}", g.pc, d.pc),
            });
            return out;
        }
        let opcode = decode(g.word).ok().map(|i| i.opcode);
        let g_cause = g.trap.map(|t| t.cause);
        let d_cause = d.trap.map(|t| t.cause);
        if g.trap != d.trap {
            out.push(Mismatch {
                kind: MismatchKind::Trap {
                    grm_cause: g_cause,
                    dut_cause: d_cause,
                },
                pc: g.pc,
                word: g.word,
                opcode,
                detail: format!("grm trap {:?}, dut trap {:?}", g.trap, d.trap),
            });
            return out;
        }
        if g.rd_write != d.rd_write {
            out.push(Mismatch {
                kind: MismatchKind::RegWrite,
                pc: g.pc,
                word: g.word,
                opcode,
                detail: format!("grm wrote {:?}, dut wrote {:?}", g.rd_write, d.rd_write),
            });
            return out;
        }
        if g.mem != d.mem {
            out.push(Mismatch {
                kind: MismatchKind::MemOp,
                pc: g.pc,
                word: g.word,
                opcode,
                detail: format!("grm mem {:?}, dut mem {:?}", g.mem, d.mem),
            });
            return out;
        }
    }
    // One trace is a strict prefix: a crash or divergent halt.
    if grm_trace.len() != dut_trace.len()
        || matches!(dut_halt, HaltReason::Crash(_)) && !matches!(grm_halt, HaltReason::Crash(_))
    {
        let (pc, word) = diverging_tail(grm_trace, dut_trace);
        let kind = if matches!(dut_halt, HaltReason::Crash(_)) {
            MismatchKind::Crash
        } else {
            MismatchKind::ControlFlow
        };
        out.push(Mismatch {
            kind,
            pc,
            word,
            opcode: decode(word).ok().map(|i| i.opcode),
            detail: format!(
                "grm halted {grm_halt:?} after {} steps, dut halted {dut_halt:?} after {} steps",
                grm_trace.len(),
                dut_trace.len()
            ),
        });
        return out;
    }
    // Full trace agreement: compare final state.
    compare_final_state(grm_arch, dut_arch, &mut out);
    out
}

fn diverging_tail(grm: &Trace, dut: &Trace) -> (u64, u32) {
    let shorter = if grm.len() < dut.len() { grm } else { dut };
    let longer = if grm.len() < dut.len() { dut } else { grm };
    longer
        .entries
        .get(shorter.len())
        .or_else(|| longer.entries.last())
        .map_or((0, 0), |e| (e.pc, e.word))
}

fn compare_final_state(grm: &ArchSnapshot, dut: &ArchSnapshot, out: &mut Vec<Mismatch>) {
    let mut push = |field: &'static str, detail: String| {
        out.push(Mismatch {
            kind: MismatchKind::FinalState { field },
            pc: 0,
            word: 0,
            opcode: None,
            detail,
        });
    };
    for i in 0..32 {
        if grm.x[i] != dut.x[i] {
            push(
                "x",
                format!("x{i}: grm {:#x}, dut {:#x}", grm.x[i], dut.x[i]),
            );
            break;
        }
    }
    for i in 0..32 {
        if grm.f[i] != dut.f[i] {
            push(
                "f",
                format!("f{i}: grm {:#x}, dut {:#x}", grm.f[i], dut.f[i]),
            );
            break;
        }
    }
    if grm.fcsr != dut.fcsr {
        push(
            "fcsr",
            format!("fcsr: grm {:#x}, dut {:#x}", grm.fcsr, dut.fcsr),
        );
    }
    if grm.mcause != dut.mcause {
        push(
            "mcause",
            format!("mcause: grm {}, dut {}", grm.mcause, dut.mcause),
        );
    }
    if grm.mtval != dut.mtval {
        push(
            "mtval",
            format!("mtval: grm {:#x}, dut {:#x}", grm.mtval, dut.mtval),
        );
    }
    if grm.instret != dut.instret {
        push(
            "instret",
            format!("instret: grm {}, dut {}", grm.instret, dut.instret),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl_grm::{TraceEntry, Trap};

    fn entry(pc: u64, word: u32) -> TraceEntry {
        TraceEntry {
            pc,
            word,
            rd_write: None,
            mem: None,
            trap: None,
        }
    }

    fn arch() -> ArchSnapshot {
        ArchSnapshot {
            x: [0; 32],
            f: [0; 32],
            fcsr: 0,
            mcause: 0,
            mtval: 0,
            mepc: 0,
            instret: 0,
        }
    }

    fn trace(entries: Vec<TraceEntry>) -> Trace {
        Trace { entries }
    }

    #[test]
    fn identical_runs_have_no_mismatch() {
        let t = trace(vec![entry(0x8000_0000, 0x13)]);
        let m = compare(
            &t,
            HaltReason::ReachedHaltPc,
            &arch(),
            &t,
            HaltReason::ReachedHaltPc,
            &arch(),
        );
        assert!(m.is_empty());
    }

    #[test]
    fn reg_write_divergence_detected_once() {
        let mut g = trace(vec![entry(0x8000_0000, 0x0053_0333)]);
        let mut d = g.clone();
        g.entries[0].rd_write = Some((false, 6, 1));
        d.entries[0].rd_write = Some((false, 6, 2));
        let m = compare(
            &g,
            HaltReason::ReachedHaltPc,
            &arch(),
            &d,
            HaltReason::ReachedHaltPc,
            &arch(),
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, MismatchKind::RegWrite);
        assert_eq!(m[0].opcode, Some(Opcode::Add));
    }

    #[test]
    fn trap_divergence_detected() {
        let g = trace(vec![TraceEntry {
            trap: Some(Trap {
                cause: 0,
                tval: 0x8000_0002,
            }),
            ..entry(0x8000_0000, 0x67)
        }]);
        let d = trace(vec![entry(0x8000_0000, 0x67)]);
        let m = compare(
            &g,
            HaltReason::ReachedHaltPc,
            &arch(),
            &d,
            HaltReason::ReachedHaltPc,
            &arch(),
        );
        assert_eq!(m.len(), 1);
        assert!(matches!(
            m[0].kind,
            MismatchKind::Trap {
                grm_cause: Some(0),
                dut_cause: None
            }
        ));
    }

    #[test]
    fn crash_detected_on_short_dut_trace() {
        let g = trace(vec![entry(0x8000_0000, 0x13), entry(0x8000_0004, 0x13)]);
        let d = trace(vec![entry(0x8000_0000, 0x13)]);
        let m = compare(
            &g,
            HaltReason::ReachedHaltPc,
            &arch(),
            &d,
            HaltReason::Crash("store to executing cache line"),
            &arch(),
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, MismatchKind::Crash);
    }

    #[test]
    fn fcsr_divergence_caught_in_final_state() {
        let t = trace(vec![entry(0x8000_0000, 0x13)]);
        let mut dut_arch = arch();
        dut_arch.fcsr = 0; // DUT missed the NV flag
        let mut grm_arch = arch();
        grm_arch.fcsr = 0x10;
        let m = compare(
            &t,
            HaltReason::ReachedHaltPc,
            &grm_arch,
            &t,
            HaltReason::ReachedHaltPc,
            &dut_arch,
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, MismatchKind::FinalState { field: "fcsr" });
    }

    #[test]
    fn signatures_are_register_independent() {
        let mut a = Mismatch {
            kind: MismatchKind::RegWrite,
            pc: 0x8000_0010,
            word: 0x0053_0333,
            opcode: Some(Opcode::Add),
            detail: "x6".into(),
        };
        let b = Mismatch {
            pc: 0x8000_0440,
            detail: "x9 (different register, same bug)".into(),
            ..a.clone()
        };
        assert_eq!(a.signature(), b.signature());
        a.kind = MismatchKind::MemOp;
        assert_ne!(a.signature(), b.signature(), "kind participates");
    }

    #[test]
    fn signature_set_dedups() {
        let m = Mismatch {
            kind: MismatchKind::Crash,
            pc: 0,
            word: 0,
            opcode: Some(Opcode::Sw),
            detail: String::new(),
        };
        let mut set = SignatureSet::new();
        assert!(set.insert(&m));
        assert!(!set.insert(&m));
        assert_eq!(set.unique(), 1);
        assert_eq!(set.total_mismatches, 2);
        assert!(set.contains(m.signature()));
    }

    #[test]
    fn control_flow_divergence_detected() {
        let g = trace(vec![entry(0x8000_0000, 0x13), entry(0x8000_0004, 0x13)]);
        let d = trace(vec![entry(0x8000_0000, 0x13), entry(0x8000_0010, 0x13)]);
        let m = compare(
            &g,
            HaltReason::ReachedHaltPc,
            &arch(),
            &d,
            HaltReason::ReachedHaltPc,
            &arch(),
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, MismatchKind::ControlFlow);
    }
}
