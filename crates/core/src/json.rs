//! Minimal flat-JSON writer/parser shared by the telemetry schema
//! ([`crate::obs`]) and the service layer (`hfl-serve`'s `JobSpec` and
//! status documents).
//!
//! The workspace is offline (no serde), so every JSON document in the
//! system is a **single-level object** of string/number/bool/null values
//! written and parsed by hand. Numbers keep their raw token through
//! parsing so 64-bit integers survive; 64-bit values that must not lose
//! precision in other readers are serialised as 16-digit hex strings
//! (see [`ObjectWriter::hex_opt`]).

use std::fmt::Write as _;

/// Incremental writer for one flat JSON object.
///
/// # Examples
///
/// ```
/// use hfl::json::ObjectWriter;
///
/// let mut w = ObjectWriter::with_type("job");
/// w.num("id", 7);
/// w.str("status", "queued");
/// assert_eq!(w.finish(), r#"{"type":"job","id":7,"status":"queued"}"#);
/// ```
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// An empty object (`{}` until fields are appended).
    #[must_use]
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    /// An object whose first field is `"type": kind` — the discriminant
    /// convention every schema in this workspace uses.
    #[must_use]
    pub fn with_type(kind: &str) -> ObjectWriter {
        let mut w = ObjectWriter::new();
        w.str("type", kind);
        w
    }

    fn key(&mut self, key: &str) {
        if self.first {
            self.first = false;
        } else {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_json_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Appends an unsigned integer field.
    pub fn num(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a float field (NaN/inf are not JSON; they clamp to 0).
    pub fn float(&mut self, key: &str, value: f64) {
        self.key(key);
        let v = if value.is_finite() { value } else { 0.0 };
        let _ = write!(self.buf, "{v}");
    }

    /// Appends a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        escape_json_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Appends a `u64` as a 16-digit hex string, or `null` — full 64-bit
    /// precision survives any JSON reader this way.
    pub fn hex_opt(&mut self, key: &str, value: Option<u64>) {
        self.key(key);
        match value {
            Some(v) => {
                let _ = write!(self.buf, "\"{v:016x}\"");
            }
            None => self.buf.push_str("null"),
        }
    }

    /// Closes the object and returns it (no trailing newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> Self {
        ObjectWriter::new()
    }
}

/// A parsed flat JSON value (the only shapes the workspace's schemas
/// use).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Numbers keep their raw token so 64-bit integers survive parsing.
    Num(String),
    /// A JSON string, unescaped.
    Str(String),
}

impl JsonValue {
    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an unsigned integer that fits.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `value` for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
pub fn escape_json_into(buf: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\t' => buf.push_str("\\t"),
            '\r' => buf.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// Scans a JSON string literal starting just after its opening quote;
/// returns the unescaped contents and the remainder after the closing
/// quote.
fn scan_json_string(s: &str) -> Option<(String, &str)> {
    let bytes = s.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, &s[i + 1..])),
            b'\\' => {
                let escape = *bytes.get(i + 1)?;
                i += 2;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = s.get(i..i + 4)?;
                        out.push(char::from_u32(u32::from_str_radix(hex, 16).ok()?)?);
                        i += 4;
                    }
                    _ => return None,
                }
            }
            _ => {
                let c = s[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

/// Parses a single-level JSON object with string/number/bool/null values
/// (nested containers are not part of any schema here). Returns the
/// fields in document order; `None` if the line is not such an object.
#[must_use]
pub fn parse_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body.trim();
    if rest.is_empty() {
        return Some(fields);
    }
    loop {
        rest = rest.trim_start().strip_prefix('"')?;
        let (key, after_key) = scan_json_string(rest)?;
        rest = after_key.trim_start().strip_prefix(':')?.trim_start();
        let after = if let Some(r) = rest.strip_prefix('"') {
            let (value, after_value) = scan_json_string(r)?;
            fields.push((key, JsonValue::Str(value)));
            after_value
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let token = rest[..end].trim();
            let value = match token {
                "null" => JsonValue::Null,
                "true" => JsonValue::Bool(true),
                "false" => JsonValue::Bool(false),
                _ => {
                    // Validate it is number-shaped so garbage fails early.
                    token.parse::<f64>().ok()?;
                    JsonValue::Num(token.to_owned())
                }
            };
            fields.push((key, value));
            &rest[end..]
        };
        let after = after.trim_start();
        if after.is_empty() {
            return Some(fields);
        }
        rest = after.strip_prefix(',')?;
    }
}

/// Convenience view over a parsed object: field lookup by name.
#[derive(Debug)]
pub struct Fields(pub Vec<(String, JsonValue)>);

impl Fields {
    /// Parses `line` into a field table.
    #[must_use]
    pub fn parse(line: &str) -> Option<Fields> {
        parse_object(line).map(Fields)
    }

    /// The named field's value, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The named field as a string.
    #[must_use]
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(JsonValue::as_str)
    }

    /// The named field as a `u64`.
    #[must_use]
    pub fn u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(JsonValue::as_u64)
    }

    /// The named field as a `usize`.
    #[must_use]
    pub fn usize(&self, name: &str) -> Option<usize> {
        self.get(name).and_then(JsonValue::as_usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let mut w = ObjectWriter::with_type("demo");
        w.num("count", u64::MAX);
        w.float("ratio", 0.5);
        w.str("name", "a \"quoted\"\nvalue");
        w.bool("flag", true);
        w.hex_opt("sig", Some(0xdead_beef_0000_0001));
        w.hex_opt("none", None);
        let line = w.finish();
        let fields = Fields::parse(&line).expect("parses");
        assert_eq!(fields.str("type"), Some("demo"));
        assert_eq!(fields.u64("count"), Some(u64::MAX));
        assert_eq!(fields.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(fields.str("name"), Some("a \"quoted\"\nvalue"));
        assert_eq!(fields.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(
            u64::from_str_radix(fields.str("sig").unwrap(), 16).unwrap(),
            0xdead_beef_0000_0001
        );
        assert_eq!(fields.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn empty_and_malformed_objects() {
        assert_eq!(parse_object("{}"), Some(Vec::new()));
        assert_eq!(ObjectWriter::new().finish(), "{}");
        for bad in ["", "{", "}", "{\"a\"}", "{\"a\":}", "{\"a\":1,}", "[1]"] {
            assert!(parse_object(bad).is_none(), "{bad:?}");
        }
    }
}
