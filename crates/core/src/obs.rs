//! Campaign observability: structured events, pluggable sinks and a
//! metrics registry.
//!
//! PR 1 made campaigns parallel and deterministic; this layer makes them
//! *legible*. Every phase of the fuzzing loop — generation, pooled
//! execution, differential testing, PPO training, triage — reports typed
//! [`Event`]s to an [`EventSink`] and per-phase wall-clock into a
//! [`Metrics`] registry, so a run can be replayed into Fig. 4-style
//! coverage/throughput curves after the fact (see the `campaign_report`
//! bench binary).
//!
//! # Determinism contract
//!
//! Events are emitted **only from the campaign's merge thread and the
//! fuzzer** (never from pool workers), in submission order, and carry
//! round/case *indices* — never timestamps — as identity. Every event
//! except [`Event::PoolOccupancy`] is therefore bit-identical across runs
//! of the same seed at any thread count. `PoolOccupancy` (flagged by
//! [`Event::is_timing`]) reports wall-clock utilisation and naturally
//! varies between runs; consumers comparing logs must filter it out.
//! Wall-clock aggregates live in [`Metrics`], which is never part of a
//! determinism comparison.
//!
//! # JSONL schema
//!
//! [`JsonlSink`] writes one flat JSON object per line with a `"type"`
//! discriminant, e.g.:
//!
//! ```text
//! {"type":"round_start","round":0,"planned":4}
//! {"type":"case_executed","round":0,"case":1,"body_len":3,"gained_bits":17,"retired":3,"mismatches":0,"new_signature":null}
//! {"type":"round_end","round":0,"executed":4,"condition":12,"line":30,"fsm":4,"unique_signatures":1}
//! ```
//!
//! Signatures are serialised as 16-digit hex strings (full 64-bit
//! precision survives any JSON reader); all other numbers fit in an f64
//! mantissa. [`read_jsonl`] and [`Event::from_json`] parse the format
//! back without external dependencies.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::{parse_object, JsonValue, ObjectWriter};

/// One structured telemetry event.
///
/// Variants carry round/case indices as identity (see the module docs'
/// determinism contract); only [`Event::PoolOccupancy`] carries
/// wall-clock-derived values.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A campaign round began: the fuzzer is about to generate `planned`
    /// cases for one pool batch.
    RoundStart {
        /// Round index (0-based).
        round: u64,
        /// Cases requested from the fuzzer for this round.
        planned: u64,
    },
    /// A campaign round finished (all feedback applied).
    RoundEnd {
        /// Round index (0-based).
        round: u64,
        /// Total cases executed so far (cumulative).
        executed: u64,
        /// Cumulative condition-coverage points hit.
        condition: u64,
        /// Cumulative line-coverage points hit.
        line: u64,
        /// Cumulative FSM-coverage points hit.
        fsm: u64,
        /// Unique mismatch signatures found so far.
        unique_signatures: u64,
    },
    /// One test case ran on the DUT/GRM pair.
    CaseExecuted {
        /// Round the case belonged to.
        round: u64,
        /// Case index (1-based, campaign-wide).
        case: u64,
        /// Body length in instructions/words.
        body_len: u64,
        /// Coverage points this case added to the cumulative set.
        gained_bits: u64,
        /// Instructions the DUT retired.
        retired: u64,
        /// Mismatches the differential test reported (before dedup).
        mismatches: u64,
        /// First *newly seen* signature this case triggered, if any.
        new_signature: Option<u64>,
    },
    /// The generator completed a PPO update.
    PpoUpdate {
        /// Case index at the time of the update.
        case: u64,
        /// Completed episodes so far.
        episode: u64,
        /// Mean probability ratio across updated heads.
        mean_ratio: f64,
        /// `E[r − 1 − ln r]` over the update's head ratios — the standard
        /// low-variance KL(π_old ‖ π) estimator.
        approx_kl: f64,
        /// Mean squared TD error of the paired critic update.
        td_loss: f64,
        /// Mean (normalised) reward over the update window.
        reward_mean: f64,
    },
    /// The coverage predictor was scored against realised coverage.
    PredictorEval {
        /// Case index the evaluation used.
        case: u64,
        /// Fraction of coverage points where `p > 0.5` matched the
        /// realised bit.
        accuracy: f64,
        /// Points the predictor scored above 0.5.
        predicted_hits: u64,
        /// Points the case actually hit.
        realized_hits: u64,
    },
    /// One row of the scenario controller's marginal-coverage table: the
    /// bandit's pull count and mean reward for one scenario arm at a
    /// deterministic case-count checkpoint. The controller emits one row
    /// per scenario, so consecutive rows with the same `case` form the
    /// full per-scenario table.
    ScenarioStats {
        /// Case index at the time of the snapshot.
        case: u64,
        /// The scenario arm's canonical name.
        scenario: String,
        /// Times the controller selected this scenario.
        pulls: u64,
        /// Running mean of the marginal-coverage reward for this scenario.
        mean_reward: f64,
    },
    /// Triage minimisation accepted one reduction.
    MinimizeStep {
        /// Differential-test executions spent so far.
        executions: u64,
        /// Body length before the reduction.
        from_len: u64,
        /// Body length after the reduction.
        to_len: u64,
        /// Interleaving seed held fixed during minimisation (multi-hart
        /// cases only): the minimised body reproduces only under this
        /// schedule, so the PoC record must carry it.
        sched_seed: Option<u64>,
    },
    /// A case was abandoned by fault containment: every attempt panicked
    /// (`reason` is the final panic message) or exceeded the fuel budget
    /// (`reason` is `"timeout"`). Deterministic: carries indices and the
    /// attempt count, never wall clock.
    CaseAborted {
        /// Round the case belonged to.
        round: u64,
        /// Case index (1-based, campaign-wide).
        case: u64,
        /// `"timeout"` or the final attempt's panic message.
        reason: String,
        /// Attempts made before the case was abandoned.
        attempts: u64,
    },
    /// Pool utilisation for one executed batch (wall-clock: excluded from
    /// determinism comparisons).
    PoolOccupancy {
        /// Round the batch belonged to.
        round: u64,
        /// Worker threads in the pool.
        threads: u64,
        /// `busy / (exec_wall × threads)`; 1.0 = no worker idled.
        occupancy: f64,
        /// Wall-clock seconds inside the batch.
        exec_seconds: f64,
        /// Summed per-case execution seconds across workers.
        busy_seconds: f64,
    },
    /// A fleet epoch began: every member is about to run its slice of the
    /// epoch's case budget.
    EpochStart {
        /// Epoch index (0-based).
        epoch: u64,
        /// Member campaigns in the fleet.
        members: u64,
        /// Total cases budgeted across members this epoch.
        planned: u64,
    },
    /// One member finished its slice of an epoch.
    MemberProgress {
        /// Epoch index (0-based).
        epoch: u64,
        /// Member index (0-based, fleet-wide).
        member: u64,
        /// The member's total cases executed so far (cumulative).
        executed: u64,
        /// The member's cumulative condition-coverage points.
        condition: u64,
        /// The member's cumulative line-coverage points.
        line: u64,
        /// The member's cumulative FSM-coverage points.
        fsm: u64,
        /// The member's unique mismatch signatures so far.
        unique_signatures: u64,
    },
    /// The shared corpus absorbed an epoch's harvest and was distilled.
    /// All counts are this epoch's deltas except the distillation sizes,
    /// which are absolute entry counts.
    CorpusSync {
        /// Epoch index (0-based).
        epoch: u64,
        /// Cases accepted into the shared corpus this epoch.
        inserted: u64,
        /// Cases rejected as coverage duplicates this epoch.
        duplicates: u64,
        /// Cases evicted by the capacity bound this epoch.
        evicted: u64,
        /// Corpus size before distillation.
        distilled_from: u64,
        /// Corpus size after distillation.
        distilled_to: u64,
    },
    /// The scheduler granted one member its next-epoch case budget.
    BudgetRealloc {
        /// Epoch the decision was made in (0-based; the budget applies to
        /// `epoch + 1`).
        epoch: u64,
        /// Member index (0-based, fleet-wide).
        member: u64,
        /// Cases granted for the next epoch.
        cases: u64,
        /// The member's marginal-coverage rate this epoch, in
        /// milli-points per case (new coverage points × 1000 / cases).
        rate_milli: u64,
    },
    /// A fleet epoch finished: corpus synced, budgets reallocated, merged
    /// coverage sampled.
    EpochEnd {
        /// Epoch index (0-based).
        epoch: u64,
        /// Total cases executed fleet-wide so far (cumulative).
        executed: u64,
        /// Merged condition-coverage points across members (per-core
        /// union, summed over cores).
        condition: u64,
        /// Merged line-coverage points across members.
        line: u64,
        /// Merged FSM-coverage points across members.
        fsm: u64,
        /// Unique mismatch signatures across all members.
        unique_signatures: u64,
    },
}

impl Event {
    /// Whether the event carries wall-clock-derived values and must be
    /// excluded from determinism comparisons (see the module docs).
    #[must_use]
    pub fn is_timing(&self) -> bool {
        matches!(self, Event::PoolOccupancy { .. })
    }

    /// The JSONL `"type"` discriminant.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::RoundEnd { .. } => "round_end",
            Event::CaseExecuted { .. } => "case_executed",
            Event::PpoUpdate { .. } => "ppo_update",
            Event::PredictorEval { .. } => "predictor_eval",
            Event::ScenarioStats { .. } => "scenario_stats",
            Event::MinimizeStep { .. } => "minimize_step",
            Event::CaseAborted { .. } => "case_aborted",
            Event::PoolOccupancy { .. } => "pool_occupancy",
            Event::EpochStart { .. } => "epoch_start",
            Event::MemberProgress { .. } => "member_progress",
            Event::CorpusSync { .. } => "corpus_sync",
            Event::BudgetRealloc { .. } => "budget_realloc",
            Event::EpochEnd { .. } => "epoch_end",
        }
    }

    /// Serialises the event as one flat JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::with_type(self.kind());
        match self {
            Event::RoundStart { round, planned } => {
                w.num("round", *round);
                w.num("planned", *planned);
            }
            Event::RoundEnd {
                round,
                executed,
                condition,
                line,
                fsm,
                unique_signatures,
            } => {
                w.num("round", *round);
                w.num("executed", *executed);
                w.num("condition", *condition);
                w.num("line", *line);
                w.num("fsm", *fsm);
                w.num("unique_signatures", *unique_signatures);
            }
            Event::CaseExecuted {
                round,
                case,
                body_len,
                gained_bits,
                retired,
                mismatches,
                new_signature,
            } => {
                w.num("round", *round);
                w.num("case", *case);
                w.num("body_len", *body_len);
                w.num("gained_bits", *gained_bits);
                w.num("retired", *retired);
                w.num("mismatches", *mismatches);
                w.hex_opt("new_signature", *new_signature);
            }
            Event::PpoUpdate {
                case,
                episode,
                mean_ratio,
                approx_kl,
                td_loss,
                reward_mean,
            } => {
                w.num("case", *case);
                w.num("episode", *episode);
                w.float("mean_ratio", *mean_ratio);
                w.float("approx_kl", *approx_kl);
                w.float("td_loss", *td_loss);
                w.float("reward_mean", *reward_mean);
            }
            Event::PredictorEval {
                case,
                accuracy,
                predicted_hits,
                realized_hits,
            } => {
                w.num("case", *case);
                w.float("accuracy", *accuracy);
                w.num("predicted_hits", *predicted_hits);
                w.num("realized_hits", *realized_hits);
            }
            Event::ScenarioStats {
                case,
                scenario,
                pulls,
                mean_reward,
            } => {
                w.num("case", *case);
                w.str("scenario", scenario);
                w.num("pulls", *pulls);
                w.float("mean_reward", *mean_reward);
            }
            Event::MinimizeStep {
                executions,
                from_len,
                to_len,
                sched_seed,
            } => {
                w.num("executions", *executions);
                w.num("from_len", *from_len);
                w.num("to_len", *to_len);
                w.hex_opt("sched_seed", *sched_seed);
            }
            Event::CaseAborted {
                round,
                case,
                reason,
                attempts,
            } => {
                w.num("round", *round);
                w.num("case", *case);
                w.str("reason", reason);
                w.num("attempts", *attempts);
            }
            Event::PoolOccupancy {
                round,
                threads,
                occupancy,
                exec_seconds,
                busy_seconds,
            } => {
                w.num("round", *round);
                w.num("threads", *threads);
                w.float("occupancy", *occupancy);
                w.float("exec_seconds", *exec_seconds);
                w.float("busy_seconds", *busy_seconds);
            }
            Event::EpochStart {
                epoch,
                members,
                planned,
            } => {
                w.num("epoch", *epoch);
                w.num("members", *members);
                w.num("planned", *planned);
            }
            Event::MemberProgress {
                epoch,
                member,
                executed,
                condition,
                line,
                fsm,
                unique_signatures,
            } => {
                w.num("epoch", *epoch);
                w.num("member", *member);
                w.num("executed", *executed);
                w.num("condition", *condition);
                w.num("line", *line);
                w.num("fsm", *fsm);
                w.num("unique_signatures", *unique_signatures);
            }
            Event::CorpusSync {
                epoch,
                inserted,
                duplicates,
                evicted,
                distilled_from,
                distilled_to,
            } => {
                w.num("epoch", *epoch);
                w.num("inserted", *inserted);
                w.num("duplicates", *duplicates);
                w.num("evicted", *evicted);
                w.num("distilled_from", *distilled_from);
                w.num("distilled_to", *distilled_to);
            }
            Event::BudgetRealloc {
                epoch,
                member,
                cases,
                rate_milli,
            } => {
                w.num("epoch", *epoch);
                w.num("member", *member);
                w.num("cases", *cases);
                w.num("rate_milli", *rate_milli);
            }
            Event::EpochEnd {
                epoch,
                executed,
                condition,
                line,
                fsm,
                unique_signatures,
            } => {
                w.num("epoch", *epoch);
                w.num("executed", *executed);
                w.num("condition", *condition);
                w.num("line", *line);
                w.num("fsm", *fsm);
                w.num("unique_signatures", *unique_signatures);
            }
        }
        w.finish()
    }

    /// Parses one JSONL line back into an event; `None` if the line is
    /// not a well-formed event object of a known type.
    #[must_use]
    pub fn from_json(line: &str) -> Option<Event> {
        let fields = parse_object(line)?;
        let f = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let u = |name: &str| f(name).and_then(JsonValue::as_u64);
        let x = |name: &str| f(name).and_then(JsonValue::as_f64);
        match f("type")?.as_str()? {
            "round_start" => Some(Event::RoundStart {
                round: u("round")?,
                planned: u("planned")?,
            }),
            "round_end" => Some(Event::RoundEnd {
                round: u("round")?,
                executed: u("executed")?,
                condition: u("condition")?,
                line: u("line")?,
                fsm: u("fsm")?,
                unique_signatures: u("unique_signatures")?,
            }),
            "case_executed" => Some(Event::CaseExecuted {
                round: u("round")?,
                case: u("case")?,
                body_len: u("body_len")?,
                gained_bits: u("gained_bits")?,
                retired: u("retired")?,
                mismatches: u("mismatches")?,
                new_signature: match f("new_signature")? {
                    JsonValue::Null => None,
                    v => Some(u64::from_str_radix(v.as_str()?, 16).ok()?),
                },
            }),
            "ppo_update" => Some(Event::PpoUpdate {
                case: u("case")?,
                episode: u("episode")?,
                mean_ratio: x("mean_ratio")?,
                approx_kl: x("approx_kl")?,
                td_loss: x("td_loss")?,
                reward_mean: x("reward_mean")?,
            }),
            "predictor_eval" => Some(Event::PredictorEval {
                case: u("case")?,
                accuracy: x("accuracy")?,
                predicted_hits: u("predicted_hits")?,
                realized_hits: u("realized_hits")?,
            }),
            "scenario_stats" => Some(Event::ScenarioStats {
                case: u("case")?,
                scenario: f("scenario")?.as_str()?.to_owned(),
                pulls: u("pulls")?,
                mean_reward: x("mean_reward")?,
            }),
            "minimize_step" => Some(Event::MinimizeStep {
                executions: u("executions")?,
                from_len: u("from_len")?,
                to_len: u("to_len")?,
                // Absent in logs written before multi-hart support.
                sched_seed: match f("sched_seed") {
                    None | Some(JsonValue::Null) => None,
                    Some(v) => Some(u64::from_str_radix(v.as_str()?, 16).ok()?),
                },
            }),
            "case_aborted" => Some(Event::CaseAborted {
                round: u("round")?,
                case: u("case")?,
                reason: f("reason")?.as_str()?.to_owned(),
                attempts: u("attempts")?,
            }),
            "pool_occupancy" => Some(Event::PoolOccupancy {
                round: u("round")?,
                threads: u("threads")?,
                occupancy: x("occupancy")?,
                exec_seconds: x("exec_seconds")?,
                busy_seconds: x("busy_seconds")?,
            }),
            "epoch_start" => Some(Event::EpochStart {
                epoch: u("epoch")?,
                members: u("members")?,
                planned: u("planned")?,
            }),
            "member_progress" => Some(Event::MemberProgress {
                epoch: u("epoch")?,
                member: u("member")?,
                executed: u("executed")?,
                condition: u("condition")?,
                line: u("line")?,
                fsm: u("fsm")?,
                unique_signatures: u("unique_signatures")?,
            }),
            "corpus_sync" => Some(Event::CorpusSync {
                epoch: u("epoch")?,
                inserted: u("inserted")?,
                duplicates: u("duplicates")?,
                evicted: u("evicted")?,
                distilled_from: u("distilled_from")?,
                distilled_to: u("distilled_to")?,
            }),
            "budget_realloc" => Some(Event::BudgetRealloc {
                epoch: u("epoch")?,
                member: u("member")?,
                cases: u("cases")?,
                rate_milli: u("rate_milli")?,
            }),
            "epoch_end" => Some(Event::EpochEnd {
                epoch: u("epoch")?,
                executed: u("executed")?,
                condition: u("condition")?,
                line: u("line")?,
                fsm: u("fsm")?,
                unique_signatures: u("unique_signatures")?,
            }),
            _ => None,
        }
    }
}

/// Receives telemetry events. Implementations must be cheap and
/// thread-safe; the campaign emits from a single thread, but sinks may be
/// shared across campaigns.
pub trait EventSink: Send + Sync {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&self) {}

    /// Takes the first I/O error the sink hit, if any (sticky: once a
    /// write fails the sink stops writing, and the error waits here
    /// until someone claims it). Telemetry must never abort a campaign,
    /// so errors are surfaced this way instead of propagating from
    /// [`EventSink::emit`]; the campaign runner reports them on
    /// `CampaignResult::sink_error`.
    fn take_error(&self) -> Option<io::Error> {
        None
    }
}

/// Discards every event — the default, so un-instrumented campaigns pay
/// one branch per would-be emission.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory (tests, live
/// dashboards).
///
/// # Examples
///
/// ```
/// use hfl::obs::{Event, EventSink, RingSink};
///
/// let sink = RingSink::new(2);
/// for round in 0..3 {
///     sink.emit(&Event::RoundStart { round, planned: 1 });
/// }
/// let kept = sink.events();
/// assert_eq!(kept.len(), 2);
/// assert_eq!(kept[0], Event::RoundStart { round: 1, planned: 1 });
/// ```
#[derive(Debug)]
pub struct RingSink {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Snapshot of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("ring sink lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring sink lock").len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().expect("ring sink lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Streams events to a file as JSON Lines (see the module docs' schema).
///
/// Write and flush errors are **sticky**: the first failure stops all
/// further writing (so a full disk costs one failed syscall, not one per
/// event) and is held until [`EventSink::take_error`] claims it.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<JsonlState>,
}

#[derive(Debug)]
struct JsonlState {
    out: BufWriter<File>,
    error: Option<io::Error>,
}

impl JsonlSink {
    /// Creates (truncating) the log file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying file-creation error.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(JsonlState {
                out: BufWriter::new(File::create(path)?),
                error: None,
            }),
        })
    }

    /// Opens the log file at `path` for appending (creating it if
    /// missing). A resumed campaign appends to the log of the interrupted
    /// run, so the concatenated stream reads as one uninterrupted run.
    ///
    /// # Errors
    /// Propagates the underlying file-open error.
    pub fn append<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(JsonlState {
                out: BufWriter::new(File::options().create(true).append(true).open(path)?),
                error: None,
            }),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut state = self.out.lock().expect("jsonl sink lock");
        if state.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(state.out, "{}", event.to_json()) {
            state.error = Some(e);
        }
    }

    fn flush(&self) {
        let mut state = self.out.lock().expect("jsonl sink lock");
        if state.error.is_some() {
            return;
        }
        if let Err(e) = state.out.flush() {
            state.error = Some(e);
        }
    }

    fn take_error(&self) -> Option<io::Error> {
        self.out.lock().expect("jsonl sink lock").error.take()
    }
}

/// Reads a JSONL event log back (blank lines skipped).
///
/// # Errors
/// I/O errors are propagated; a line that fails to parse becomes
/// [`io::ErrorKind::InvalidData`] naming the line number.
pub fn read_jsonl<P: AsRef<Path>>(path: P) -> io::Result<Vec<Event>> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Some(e) => events.push(e),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: not a valid event: {line}", i + 1),
                ))
            }
        }
    }
    Ok(events)
}

/// A cloneable, always-valid handle to an event sink.
///
/// Campaign components hold this instead of a bare `&dyn EventSink` so
/// specs stay `Clone` and the disabled path costs exactly one branch:
/// [`SinkHandle::null`] marks itself disabled and [`SinkHandle::emit`]
/// short-circuits before any event is even constructed at instrumented
/// call sites that check [`SinkHandle::enabled`] first.
#[derive(Clone)]
pub struct SinkHandle {
    sink: Arc<dyn EventSink>,
    enabled: bool,
}

impl SinkHandle {
    /// A disabled handle around [`NullSink`].
    #[must_use]
    pub fn null() -> SinkHandle {
        SinkHandle {
            sink: Arc::new(NullSink),
            enabled: false,
        }
    }

    /// Wraps a live sink.
    #[must_use]
    pub fn new(sink: Arc<dyn EventSink>) -> SinkHandle {
        SinkHandle {
            sink,
            enabled: true,
        }
    }

    /// Whether events reach a real sink (hot paths skip event
    /// construction entirely when this is false).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Emits one event (no-op when disabled).
    pub fn emit(&self, event: &Event) {
        if self.enabled {
            self.sink.emit(event);
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if self.enabled {
            self.sink.flush();
        }
    }

    /// Takes the sink's sticky I/O error, if it hit one (see
    /// [`EventSink::take_error`]).
    #[must_use]
    pub fn take_error(&self) -> Option<io::Error> {
        if self.enabled {
            self.sink.take_error()
        } else {
            None
        }
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::null()
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// Upper bucket bounds (seconds) of duration histograms: nine log-decades
/// from a microsecond to 1000 s, plus an overflow bucket.
pub const DURATION_BUCKETS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// A streaming histogram: count/sum/min/max plus log-decade buckets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Counts per bucket; `buckets[i]` counts values `<=
    /// DURATION_BUCKETS[i]`, the last entry is the overflow bucket.
    pub buckets: [u64; DURATION_BUCKETS.len() + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; DURATION_BUCKETS.len() + 1],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let bucket = DURATION_BUCKETS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(DURATION_BUCKETS.len());
        self.buckets[bucket] += 1;
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A registry of monotonic counters and histograms, keyed by static
/// names. Phase wall-clock lives here (never in deterministic events):
/// the campaign runner observes `phase.generate.seconds`,
/// `phase.execute.seconds`, `phase.difftest.seconds` and
/// `phase.train.seconds` once per round.
///
/// # Examples
///
/// ```
/// use hfl::obs::Metrics;
///
/// let mut metrics = Metrics::new();
/// metrics.inc("campaign.cases", 4);
/// metrics.observe("phase.execute.seconds", 0.002);
/// let snap = metrics.snapshot();
/// assert_eq!(snap.counter("campaign.cases"), 4);
/// assert_eq!(snap.histogram("phase.execute.seconds").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `by` to the named monotonic counter.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Records a duration in seconds into the named histogram.
    pub fn observe_duration(&mut self, name: &'static str, duration: Duration) {
        self.observe(name, duration.as_secs_f64());
    }

    /// Overwrites the named counter (campaign resume restores counters
    /// from a checkpointed [`MetricsSnapshot`]).
    pub fn restore_counter(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Overwrites the named histogram (campaign resume).
    pub fn restore_histogram(&mut self, name: &'static str, histogram: Histogram) {
        self.histograms.insert(name, histogram);
    }

    /// A point-in-time copy of every counter and histogram.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
        }
    }
}

/// A frozen copy of a [`Metrics`] registry, carried on
/// `CampaignResult::metrics`. Wall-clock values live here and are never
/// part of a determinism comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// The named counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram, if it recorded anything.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// One row of the per-round table [`replay_rounds`] reconstructs from an
/// event log — the Fig. 4 coverage curve plus throughput columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRow {
    /// Round index.
    pub round: u64,
    /// Total cases executed through the end of this round.
    pub cases: u64,
    /// Cumulative condition-coverage points.
    pub condition: u64,
    /// Cumulative line-coverage points.
    pub line: u64,
    /// Cumulative FSM-coverage points.
    pub fsm: u64,
    /// Unique mismatch signatures so far.
    pub unique_signatures: u64,
    /// DUT instructions retired through the end of this round.
    pub retired: u64,
    /// Pool occupancy of this round's batch (0 when the log lacks
    /// `pool_occupancy` events).
    pub occupancy: f64,
    /// Wall-clock seconds this round's batch spent executing.
    pub exec_seconds: f64,
}

/// Replays an event log into a per-round coverage/throughput table.
///
/// Only `round_end`, `case_executed` and `pool_occupancy` events are
/// consulted, so partially filtered logs still replay.
#[must_use]
pub fn replay_rounds(events: &[Event]) -> Vec<RoundRow> {
    let mut rows: Vec<RoundRow> = Vec::new();
    let mut retired_total = 0u64;
    let mut occupancy: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for event in events {
        match event {
            Event::CaseExecuted { retired, .. } => retired_total += retired,
            Event::PoolOccupancy {
                round,
                occupancy: occ,
                exec_seconds,
                ..
            } => {
                let entry = occupancy.entry(*round).or_insert((0.0, 0.0));
                entry.0 = *occ;
                entry.1 += exec_seconds;
            }
            Event::RoundEnd {
                round,
                executed,
                condition,
                line,
                fsm,
                unique_signatures,
            } => {
                let (occ, exec) = occupancy.get(round).copied().unwrap_or((0.0, 0.0));
                rows.push(RoundRow {
                    round: *round,
                    cases: *executed,
                    condition: *condition,
                    line: *line,
                    fsm: *fsm,
                    unique_signatures: *unique_signatures,
                    retired: retired_total,
                    occupancy: occ,
                    exec_seconds: exec,
                });
            }
            _ => {}
        }
    }
    rows
}

/// One epoch row of the fleet table [`replay_fleet`] reconstructs: the
/// merged coverage curve plus the epoch's corpus-sync summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Total cases executed fleet-wide through this epoch.
    pub cases: u64,
    /// Merged condition-coverage points.
    pub condition: u64,
    /// Merged line-coverage points.
    pub line: u64,
    /// Merged FSM-coverage points.
    pub fsm: u64,
    /// Unique signatures across all members.
    pub unique_signatures: u64,
    /// Cases the shared corpus accepted this epoch.
    pub inserted: u64,
    /// Coverage duplicates rejected this epoch.
    pub duplicates: u64,
    /// Entries evicted by the capacity bound this epoch.
    pub evicted: u64,
    /// Corpus size going into distillation.
    pub distilled_from: u64,
    /// Corpus size after distillation.
    pub distilled_to: u64,
}

/// One member row of the fleet table: the member's cumulative state at
/// an epoch boundary plus the budget the scheduler granted it for the
/// next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetMemberRow {
    /// Epoch index.
    pub epoch: u64,
    /// Member index.
    pub member: u64,
    /// The member's cumulative cases executed.
    pub executed: u64,
    /// The member's cumulative condition-coverage points.
    pub condition: u64,
    /// The member's cumulative line-coverage points.
    pub line: u64,
    /// The member's cumulative FSM-coverage points.
    pub fsm: u64,
    /// The member's unique signatures.
    pub unique_signatures: u64,
    /// The member's marginal-coverage rate this epoch (milli-points per
    /// case), from the scheduler's `budget_realloc` event (0 when the
    /// log lacks one, e.g. the final epoch).
    pub rate_milli: u64,
    /// Cases granted for the next epoch (0 when the log lacks a
    /// `budget_realloc` event for this member/epoch).
    pub next_budget: u64,
}

/// A fleet event log replayed into per-epoch and per-member tables (the
/// `campaign_report --fleet` backing store).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetReplay {
    /// One row per `epoch_end`, in epoch order.
    pub epochs: Vec<FleetEpochRow>,
    /// One row per `member_progress`, in emission order.
    pub members: Vec<FleetMemberRow>,
}

/// Replays a fleet event log into per-epoch merged-coverage rows and
/// per-member budget rows.
///
/// Only `member_progress`, `corpus_sync`, `budget_realloc` and
/// `epoch_end` events are consulted, so mixed or filtered logs still
/// replay.
#[must_use]
pub fn replay_fleet(events: &[Event]) -> FleetReplay {
    let mut replay = FleetReplay::default();
    let mut sync: BTreeMap<u64, (u64, u64, u64, u64, u64)> = BTreeMap::new();
    for event in events {
        match event {
            Event::MemberProgress {
                epoch,
                member,
                executed,
                condition,
                line,
                fsm,
                unique_signatures,
            } => replay.members.push(FleetMemberRow {
                epoch: *epoch,
                member: *member,
                executed: *executed,
                condition: *condition,
                line: *line,
                fsm: *fsm,
                unique_signatures: *unique_signatures,
                rate_milli: 0,
                next_budget: 0,
            }),
            Event::CorpusSync {
                epoch,
                inserted,
                duplicates,
                evicted,
                distilled_from,
                distilled_to,
            } => {
                sync.insert(
                    *epoch,
                    (
                        *inserted,
                        *duplicates,
                        *evicted,
                        *distilled_from,
                        *distilled_to,
                    ),
                );
            }
            Event::BudgetRealloc {
                epoch,
                member,
                cases,
                rate_milli,
            } => {
                if let Some(row) = replay
                    .members
                    .iter_mut()
                    .find(|r| r.epoch == *epoch && r.member == *member)
                {
                    row.next_budget = *cases;
                    row.rate_milli = *rate_milli;
                }
            }
            Event::EpochEnd {
                epoch,
                executed,
                condition,
                line,
                fsm,
                unique_signatures,
            } => {
                let (inserted, duplicates, evicted, distilled_from, distilled_to) =
                    sync.get(epoch).copied().unwrap_or_default();
                replay.epochs.push(FleetEpochRow {
                    epoch: *epoch,
                    cases: *executed,
                    condition: *condition,
                    line: *line,
                    fsm: *fsm,
                    unique_signatures: *unique_signatures,
                    inserted,
                    duplicates,
                    evicted,
                    distilled_from,
                    distilled_to,
                });
            }
            _ => {}
        }
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStart {
                round: 0,
                planned: 2,
            },
            Event::CaseExecuted {
                round: 0,
                case: 1,
                body_len: 3,
                gained_bits: 17,
                retired: 3,
                mismatches: 1,
                new_signature: Some(0x0123_4567_89ab_cdef),
            },
            Event::CaseExecuted {
                round: 0,
                case: 2,
                body_len: 4,
                gained_bits: 0,
                retired: 4,
                mismatches: 0,
                new_signature: None,
            },
            Event::PoolOccupancy {
                round: 0,
                threads: 2,
                occupancy: 0.75,
                exec_seconds: 0.5,
                busy_seconds: 0.75,
            },
            Event::RoundEnd {
                round: 0,
                executed: 2,
                condition: 12,
                line: 30,
                fsm: 4,
                unique_signatures: 1,
            },
            Event::PpoUpdate {
                case: 2,
                episode: 1,
                mean_ratio: 1.01,
                approx_kl: 0.002,
                td_loss: 0.25,
                reward_mean: -0.125,
            },
            Event::PredictorEval {
                case: 2,
                accuracy: 0.9375,
                predicted_hits: 12,
                realized_hits: 14,
            },
            Event::ScenarioStats {
                case: 2,
                scenario: String::from("fp_nan"),
                pulls: 7,
                mean_reward: 0.25,
            },
            Event::MinimizeStep {
                executions: 5,
                from_len: 9,
                to_len: 5,
                sched_seed: Some(0xA5),
            },
            Event::CaseAborted {
                round: 1,
                case: 3,
                reason: String::from("injected worker panic at case 3"),
                attempts: 2,
            },
            Event::EpochStart {
                epoch: 0,
                members: 2,
                planned: 24,
            },
            Event::MemberProgress {
                epoch: 0,
                member: 0,
                executed: 12,
                condition: 10,
                line: 25,
                fsm: 3,
                unique_signatures: 1,
            },
            Event::MemberProgress {
                epoch: 0,
                member: 1,
                executed: 12,
                condition: 8,
                line: 22,
                fsm: 2,
                unique_signatures: 0,
            },
            Event::CorpusSync {
                epoch: 0,
                inserted: 5,
                duplicates: 2,
                evicted: 0,
                distilled_from: 5,
                distilled_to: 3,
            },
            Event::BudgetRealloc {
                epoch: 0,
                member: 0,
                cases: 14,
                rate_milli: 833,
            },
            Event::BudgetRealloc {
                epoch: 0,
                member: 1,
                cases: 10,
                rate_milli: 667,
            },
            Event::EpochEnd {
                epoch: 0,
                executed: 24,
                condition: 13,
                line: 31,
                fsm: 4,
                unique_signatures: 1,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in sample_events() {
            let line = event.to_json();
            let parsed = Event::from_json(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(parsed, event, "{line}");
        }
    }

    #[test]
    fn signatures_survive_with_full_64_bit_precision() {
        let event = Event::CaseExecuted {
            round: 0,
            case: 1,
            body_len: 1,
            gained_bits: 0,
            retired: 1,
            mismatches: 1,
            new_signature: Some(u64::MAX - 1),
        };
        let parsed = Event::from_json(&event.to_json()).unwrap();
        assert_eq!(parsed, event);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"type":"unknown_event","round":1}"#,
            r#"{"type":"round_start","round":1}"#, // missing field
            r#"{"type":"round_start","round":oops,"planned":1}"#,
        ] {
            assert!(Event::from_json(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn only_pool_occupancy_is_timing() {
        for event in sample_events() {
            assert_eq!(
                event.is_timing(),
                matches!(event, Event::PoolOccupancy { .. })
            );
        }
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let sink = RingSink::new(3);
        assert!(sink.is_empty());
        for round in 0..5 {
            sink.emit(&Event::RoundStart { round, planned: 1 });
        }
        let events = sink.events();
        assert_eq!(sink.len(), 3);
        assert_eq!(
            events,
            (2..5)
                .map(|round| Event::RoundStart { round, planned: 1 })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn jsonl_sink_round_trips_through_a_file() {
        let path = std::env::temp_dir().join(format!(
            "hfl-obs-test-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let events = sample_events();
        {
            let sink = JsonlSink::create(&path).expect("create log");
            for e in &events {
                sink.emit(e);
            }
            sink.flush();
        }
        let read = read_jsonl(&path).expect("parse log");
        std::fs::remove_file(&path).ok();
        assert_eq!(read, events);
    }

    #[test]
    fn read_jsonl_flags_the_bad_line() {
        let path =
            std::env::temp_dir().join(format!("hfl-obs-badline-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            format!(
                "{}\ngarbage\n",
                Event::RoundStart {
                    round: 0,
                    planned: 1
                }
                .to_json()
            ),
        )
        .unwrap();
        let err = read_jsonl(&path).expect_err("must reject");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn aborted_case_reasons_survive_json_escaping() {
        for reason in [
            "plain message",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand tab\tand\rcarriage",
            "control \u{1} char and unicode π",
            "",
        ] {
            let event = Event::CaseAborted {
                round: 0,
                case: 1,
                reason: reason.to_owned(),
                attempts: 2,
            };
            let line = event.to_json();
            let parsed = Event::from_json(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(parsed, event, "{line}");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn jsonl_sink_errors_are_sticky_and_claimable() {
        // /dev/full accepts the open but fails every write with ENOSPC.
        let sink = match JsonlSink::create("/dev/full") {
            Ok(sink) => sink,
            Err(_) => return, // not available in this sandbox
        };
        for e in sample_events() {
            sink.emit(&e);
        }
        sink.flush();
        let handle = SinkHandle::new(Arc::new(sink));
        let err = handle
            .take_error()
            .expect("writing to /dev/full must surface an error");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull, "{err}");
        assert!(handle.take_error().is_none(), "error is claimed once");
    }

    #[test]
    fn null_handle_is_disabled_and_live_handles_deliver() {
        let null = SinkHandle::null();
        assert!(!null.enabled());
        null.emit(&Event::RoundStart {
            round: 0,
            planned: 1,
        }); // must not panic
        let ring = Arc::new(RingSink::new(8));
        let live = SinkHandle::new(ring.clone());
        assert!(live.enabled());
        live.emit(&Event::RoundStart {
            round: 7,
            planned: 1,
        });
        live.flush();
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn metrics_counters_and_histograms_accumulate() {
        let mut metrics = Metrics::new();
        metrics.inc("campaign.cases", 3);
        metrics.inc("campaign.cases", 2);
        metrics.observe("phase.execute.seconds", 0.5e-3);
        metrics.observe("phase.execute.seconds", 2.0);
        metrics.observe_duration("phase.execute.seconds", Duration::from_millis(10));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("campaign.cases"), 5);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("phase.execute.seconds").unwrap();
        assert_eq!(h.count, 3);
        assert!((h.sum - 2.0105).abs() < 1e-9);
        assert!((h.min - 0.5e-3).abs() < 1e-12);
        assert!((h.max - 2.0).abs() < 1e-12);
        assert!((h.mean() - h.sum / 3.0).abs() < 1e-12);
        // 0.5 ms <= 1e-3, 10 ms <= 1e-2, 2.0 <= 10.0.
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[7], 1);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn histogram_overflow_bucket_catches_huge_values() {
        let mut h = Histogram::default();
        h.observe(1e6);
        assert_eq!(h.buckets[DURATION_BUCKETS.len()], 1);
        assert_eq!(h.mean(), 1e6);
    }

    #[test]
    fn replay_reconstructs_the_round_table() {
        let rows = replay_rounds(&sample_events());
        assert_eq!(rows.len(), 1);
        let row = rows[0];
        assert_eq!(row.round, 0);
        assert_eq!(row.cases, 2);
        assert_eq!((row.condition, row.line, row.fsm), (12, 30, 4));
        assert_eq!(row.unique_signatures, 1);
        assert_eq!(row.retired, 7);
        assert!((row.occupancy - 0.75).abs() < 1e-12);
        assert!((row.exec_seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn replay_fleet_reconstructs_epoch_and_member_tables() {
        let replay = replay_fleet(&sample_events());
        assert_eq!(replay.epochs.len(), 1);
        let epoch = replay.epochs[0];
        assert_eq!(epoch.epoch, 0);
        assert_eq!(epoch.cases, 24);
        assert_eq!((epoch.condition, epoch.line, epoch.fsm), (13, 31, 4));
        assert_eq!(epoch.unique_signatures, 1);
        assert_eq!((epoch.inserted, epoch.duplicates, epoch.evicted), (5, 2, 0));
        assert_eq!((epoch.distilled_from, epoch.distilled_to), (5, 3));

        assert_eq!(replay.members.len(), 2);
        let m0 = replay.members[0];
        assert_eq!((m0.epoch, m0.member), (0, 0));
        assert_eq!(m0.executed, 12);
        assert_eq!((m0.next_budget, m0.rate_milli), (14, 833));
        let m1 = replay.members[1];
        assert_eq!((m1.next_budget, m1.rate_milli), (10, 667));

        // Campaign-only logs have no fleet rows; fleet replays tolerate
        // missing corpus_sync/budget_realloc events.
        let campaign_only: Vec<Event> = sample_events()
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    Event::EpochStart { .. }
                        | Event::MemberProgress { .. }
                        | Event::CorpusSync { .. }
                        | Event::BudgetRealloc { .. }
                        | Event::EpochEnd { .. }
                )
            })
            .collect();
        assert_eq!(replay_fleet(&campaign_only), FleetReplay::default());
        let sparse = [Event::EpochEnd {
            epoch: 3,
            executed: 9,
            condition: 1,
            line: 2,
            fsm: 0,
            unique_signatures: 0,
        }];
        let replay = replay_fleet(&sparse);
        assert_eq!(replay.epochs[0].distilled_to, 0);
        assert_eq!(replay.epochs[0].cases, 9);
    }

    #[test]
    fn replay_tolerates_filtered_logs() {
        let deterministic: Vec<Event> = sample_events()
            .into_iter()
            .filter(|e| !e.is_timing())
            .collect();
        let rows = replay_rounds(&deterministic);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].occupancy, 0.0);
        assert_eq!(rows[0].cases, 2);
    }
}
