//! Property tests for the batched hot-path: every batched forward
//! (`Linear::forward_batch`, `Embedding::lookup_batch`, `Lstm::step_batch`)
//! must be *bitwise* identical to the scalar path it replaces, across
//! random shapes and seeds, before and after optimiser steps (which
//! invalidate the cached transposed weights). A finite-difference gradient
//! check evaluates the loss *through* the batched forward, pinning the
//! analytic gradients to the batched computation.

use hfl_nn::{Adam, Linear, Lstm, Scratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn linear_forward_batch_is_bitwise_identical(
        seed in any::<u64>(),
        in_dim in 1..24usize,
        out_dim in 1..24usize,
        batch in 1..9usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(out_dim, in_dim, &mut rng);
        let xs: Vec<Vec<f32>> = (0..batch).map(|_| random_vec(&mut rng, in_dim)).collect();
        let xrefs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        let mut scratch = Scratch::default();
        let batched = layer.forward_batch(&xrefs, &mut scratch);
        prop_assert_eq!(batched.len(), batch);
        for (x, b) in xs.iter().zip(&batched) {
            prop_assert_eq!(bits(&layer.forward(x)), bits(b));
        }
        // Scratch reuse must be invisible: a second pass agrees too.
        let again = layer.forward_batch(&xrefs, &mut scratch);
        for (a, b) in again.iter().zip(&batched) {
            prop_assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn linear_forward_batch_survives_adam_steps(
        seed in any::<u64>(),
        in_dim in 1..16usize,
        out_dim in 1..16usize,
    ) {
        // The transposed-weight cache must be invalidated by the optimiser
        // step, so the batched path keeps tracking the scalar one.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(out_dim, in_dim, &mut rng);
        let mut adam = Adam::new(1e-2);
        let mut scratch = Scratch::default();
        for _ in 0..3 {
            let x = random_vec(&mut rng, in_dim);
            // Warm the cache, then train.
            let before = layer.forward_batch(&[&x], &mut scratch);
            prop_assert_eq!(bits(&layer.forward(&x)), bits(&before[0]));
            let dy = layer.forward(&x);
            let _ = layer.backward(&x, &dy);
            adam.step(&mut layer.params_mut());
            let after = layer.forward_batch(&[&x], &mut scratch);
            prop_assert_eq!(
                bits(&layer.forward(&x)),
                bits(&after[0]),
                "stale transpose cache after Adam step"
            );
        }
    }

    #[test]
    fn lstm_step_batch_is_bitwise_identical(
        seed in any::<u64>(),
        in_dim in 1..12usize,
        hidden in 1..12usize,
        layers in 1..4usize,
        batch in 1..9usize,
        warmup in 0..4usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(in_dim, hidden, layers, &mut rng);
        // Advance a shared state so the recurrent term is non-trivial.
        let mut state = lstm.zero_state();
        for _ in 0..warmup {
            let x = random_vec(&mut rng, in_dim);
            let _ = lstm.step(&x, &mut state);
        }
        let xs: Vec<Vec<f32>> = (0..batch).map(|_| random_vec(&mut rng, in_dim)).collect();
        let xrefs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        let mut scratch = Scratch::default();
        let batched = lstm.step_batch(&xrefs, &state, &mut scratch);
        prop_assert_eq!(batched.len(), batch);
        for (x, b) in xs.iter().zip(&batched) {
            // The scalar reference: each candidate continues from a clone
            // of the shared state.
            let mut st = state.clone();
            prop_assert_eq!(bits(&lstm.step(x, &mut st)), bits(b));
        }
    }
}

#[test]
fn embedding_lookup_batch_matches_forward() {
    let mut rng = StdRng::seed_from_u64(11);
    let emb = hfl_nn::Embedding::new(17, 6, &mut rng);
    let ids: Vec<usize> = (0..40).map(|_| rng.gen_range(0..64usize)).collect();
    let batched = emb.lookup_batch(&ids);
    for (&id, b) in ids.iter().zip(&batched) {
        assert_eq!(
            bits(&emb.forward(id)),
            bits(b),
            "id {id} (wrapping) diverged"
        );
    }
}

/// Finite-difference gradient check where the loss is evaluated through the
/// *batched* forward: `L = ½ Σ_b ‖forward_batch(x)_b‖²`. The analytic
/// gradients come from the scalar backward — since the batched forward is
/// bitwise identical to the scalar one, they must agree with the numeric
/// derivative of the batched loss.
#[test]
fn gradcheck_through_the_batched_forward() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut layer = Linear::new(3, 5, &mut rng);
    let xs: Vec<Vec<f32>> = (0..4).map(|_| random_vec(&mut rng, 5)).collect();
    let mut scratch = Scratch::default();
    let batched_loss = |l: &Linear, scratch: &mut Scratch| -> f32 {
        let xrefs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        l.forward_batch(&xrefs, scratch)
            .iter()
            .flat_map(|y| y.iter().map(|v| v * v))
            .sum::<f32>()
            * 0.5
    };
    // Analytic gradients via the scalar backward (dL/dy = y).
    for x in &xs {
        let y = layer.forward(x);
        let _ = layer.backward(x, &y);
    }
    let eps = 1e-2;
    for idx in 0..layer.w.len() {
        let orig = layer.w.data[idx];
        layer.w.data[idx] = orig + eps;
        layer.w.invalidate_transpose();
        let lp = batched_loss(&layer, &mut scratch);
        layer.w.data[idx] = orig - eps;
        layer.w.invalidate_transpose();
        let lm = batched_loss(&layer, &mut scratch);
        layer.w.data[idx] = orig;
        layer.w.invalidate_transpose();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - layer.w.grad[idx]).abs() < 2e-2,
            "w[{idx}]: analytic {} vs numeric {numeric} through the batched path",
            layer.w.grad[idx]
        );
    }
}
