//! Finite-difference gradient checks through the crate's *public* API —
//! the in-module unit tests check internals, these pin the exported
//! surface: `Lstm::backward_seq`, `Linear::backward`,
//! `Embedding::backward` and the direction of an `Adam` step.

use hfl_nn::{Adam, Embedding, Linear, Lstm, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

fn toy_sequence(seq: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..seq)
        .map(|t| {
            (0..dim)
                .map(|i| ((t * dim + i) as f32 * 0.61).cos() * 0.4)
                .collect()
        })
        .collect()
}

#[test]
fn lstm_backward_seq_matches_finite_differences() {
    let mut lstm = Lstm::new(3, 4, 2, &mut StdRng::seed_from_u64(11));
    let xs = toy_sequence(4, 3);
    // Loss: half the squared norm of every timestep's top hidden vector,
    // so dL/dh_t = h_t.
    let loss = |l: &Lstm| -> f32 {
        l.forward_seq(&xs)
            .outputs
            .iter()
            .flat_map(|h| h.iter())
            .map(|v| v * v)
            .sum::<f32>()
            * 0.5
    };
    let trace = lstm.forward_seq(&xs);
    let d_out = trace.outputs.clone();
    let dxs = lstm.backward_seq(&trace, &d_out);

    // Every parameter tensor of every layer, sampled for speed.
    fn tensor_of(l: &mut Lstm, layer: usize, t_idx: usize) -> &mut Tensor {
        match t_idx {
            0 => &mut l.cells[layer].wx,
            1 => &mut l.cells[layer].wh,
            _ => &mut l.cells[layer].b,
        }
    }
    for layer in 0..lstm.layers() {
        for (t_idx, stride) in [(0usize, 7usize), (1, 5), (2, 3)] {
            let len = tensor_of(&mut lstm, layer, t_idx).len();
            for idx in (0..len).step_by(stride) {
                let analytic = tensor_of(&mut lstm, layer, t_idx).grad[idx];
                let orig = tensor_of(&mut lstm, layer, t_idx).data[idx];
                tensor_of(&mut lstm, layer, t_idx).data[idx] = orig + EPS;
                let lp = loss(&lstm);
                tensor_of(&mut lstm, layer, t_idx).data[idx] = orig - EPS;
                let lm = loss(&lstm);
                tensor_of(&mut lstm, layer, t_idx).data[idx] = orig;
                let numeric = (lp - lm) / (2.0 * EPS);
                assert!(
                    (numeric - analytic).abs() < TOL,
                    "layer {layer} tensor {t_idx} [{idx}]: analytic {analytic} vs numeric \
                     {numeric}"
                );
            }
        }
    }
    // Input gradients.
    for (t, x) in xs.iter().enumerate() {
        for i in 0..x.len() {
            let mut xp = xs.clone();
            xp[t][i] += EPS;
            let mut xm = xs.clone();
            xm[t][i] -= EPS;
            let probe = |seq: &[Vec<f32>]| -> f32 {
                lstm.forward_seq(seq)
                    .outputs
                    .iter()
                    .flat_map(|h| h.iter())
                    .map(|v| v * v)
                    .sum::<f32>()
                    * 0.5
            };
            let numeric = (probe(&xp) - probe(&xm)) / (2.0 * EPS);
            assert!(
                (numeric - dxs[t][i]).abs() < TOL,
                "dx[{t}][{i}]: analytic {} vs numeric {numeric}",
                dxs[t][i]
            );
        }
    }
}

#[test]
fn linear_backward_matches_finite_differences() {
    let mut layer = Linear::new(4, 3, &mut StdRng::seed_from_u64(21));
    let x = vec![0.7f32, -0.2, 0.4];
    let loss =
        |l: &Linear, x: &[f32]| -> f32 { l.forward(x).iter().map(|y| y * y).sum::<f32>() * 0.5 };
    let y = layer.forward(&x);
    let dx = layer.backward(&x, &y);

    for idx in 0..layer.w.len() {
        let orig = layer.w.data[idx];
        layer.w.data[idx] = orig + EPS;
        let lp = loss(&layer, &x);
        layer.w.data[idx] = orig - EPS;
        let lm = loss(&layer, &x);
        layer.w.data[idx] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        assert!(
            (numeric - layer.w.grad[idx]).abs() < TOL,
            "w[{idx}]: analytic {} vs numeric {numeric}",
            layer.w.grad[idx]
        );
    }
    for idx in 0..layer.b.len() {
        let orig = layer.b.data[idx];
        layer.b.data[idx] = orig + EPS;
        let lp = loss(&layer, &x);
        layer.b.data[idx] = orig - EPS;
        let lm = loss(&layer, &x);
        layer.b.data[idx] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        assert!(
            (numeric - layer.b.grad[idx]).abs() < TOL,
            "b[{idx}]: analytic {} vs numeric {numeric}",
            layer.b.grad[idx]
        );
    }
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp[i] += EPS;
        let mut xm = x.clone();
        xm[i] -= EPS;
        let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * EPS);
        assert!(
            (numeric - dx[i]).abs() < TOL,
            "dx[{i}]: analytic {} vs numeric {numeric}",
            dx[i]
        );
    }
}

#[test]
fn embedding_backward_matches_finite_differences() {
    let mut emb = Embedding::new(6, 5, &mut StdRng::seed_from_u64(31));
    let token = 4usize;
    let loss = |e: &Embedding| -> f32 { e.forward(token).iter().map(|v| v * v).sum::<f32>() * 0.5 };
    let dvec = emb.forward(token); // dL/dvec = vec for this loss
    emb.backward(token, &dvec);

    for idx in 0..emb.table.len() {
        let orig = emb.table.data[idx];
        emb.table.data[idx] = orig + EPS;
        let lp = loss(&emb);
        emb.table.data[idx] = orig - EPS;
        let lm = loss(&emb);
        emb.table.data[idx] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        assert!(
            (numeric - emb.table.grad[idx]).abs() < TOL,
            "table[{idx}]: analytic {} vs numeric {numeric}",
            emb.table.grad[idx]
        );
    }
    // Rows other than the looked-up token carry exactly zero gradient.
    let dim = emb.dim();
    for row in 0..emb.vocab() {
        let zero = emb.table.grad[row * dim..(row + 1) * dim]
            .iter()
            .all(|&g| g == 0.0);
        assert_eq!(zero, row != token, "row {row}");
    }
    // Wrapped ids scatter into the same row.
    emb.table.zero_grad();
    emb.backward(token + emb.vocab(), &dvec);
    let wrapped = emb.table.grad[token * dim..(token + 1) * dim].to_vec();
    assert_eq!(wrapped, dvec);
}

#[test]
fn adam_first_step_moves_against_the_gradient_at_lr_scale() {
    // On the first step, mhat/√vhat = sign(g), so every coordinate moves
    // by ≈ lr against its gradient — regardless of the gradient's size.
    let lr = 0.05f32;
    let mut t = Tensor::zeros(2, 2);
    t.data = vec![1.0, -2.0, 0.5, 3.0];
    t.grad = vec![10.0, -0.003, 7.5, -42.0];
    let before = t.data.clone();
    let grad = t.grad.clone();
    let mut adam = Adam::new(lr);
    adam.clip_norm = None;
    adam.step(&mut [&mut t]);
    for i in 0..4 {
        let moved = t.data[i] - before[i];
        assert!(
            moved * grad[i] < 0.0,
            "coordinate {i} moved with the gradient: Δ={moved}, g={}",
            grad[i]
        );
        assert!(
            (moved.abs() - lr).abs() < 0.1 * lr,
            "coordinate {i} step size {} not ≈ lr {lr}",
            moved.abs()
        );
    }
    assert_eq!(t.grad, vec![0.0; 4], "step clears gradients");
    assert_eq!(adam.steps(), 1);
}

#[test]
fn adam_descends_a_loss_through_a_linear_layer() {
    // End-to-end: Adam + Linear::backward reduce a regression loss.
    let mut rng = StdRng::seed_from_u64(41);
    let mut layer = Linear::new(2, 2, &mut rng);
    let mut adam = Adam::new(0.05);
    let x = vec![1.0f32, -1.0];
    let target = vec![0.3f32, -0.7];
    let loss_of = |l: &Linear| -> f32 {
        l.forward(&x)
            .iter()
            .zip(&target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f32>()
            * 0.5
    };
    let initial = loss_of(&layer);
    for _ in 0..200 {
        let y = layer.forward(&x);
        let dy: Vec<f32> = y.iter().zip(&target).map(|(y, t)| y - t).collect();
        let _ = layer.backward(&x, &dy);
        adam.step(&mut layer.params_mut());
    }
    let trained = loss_of(&layer);
    assert!(
        trained < initial * 0.01,
        "loss {initial} -> {trained}: no convergence"
    );
}
