//! A reusable scratch arena for the batched hot path.
//!
//! The batched forward APIs ([`crate::Lstm::step_batch`],
//! [`crate::Linear::forward_batch`]) need per-step temporaries — flattened
//! input batches, pre-activation gate buffers, intermediate layer outputs.
//! Allocating those as fresh `Vec`s on every generated token dominates the
//! allocator profile of a campaign, so callers thread a [`Scratch`] through
//! the batched calls instead: buffers are taken from a pool, used, and
//! given back, and a steady-state step allocates nothing.

/// A pool of reusable `f32` buffers.
///
/// Buffers handed out by [`Scratch::take_zeroed`] are always fully zeroed,
/// so reuse can never leak values between steps — the arena is invisible to
/// the numerics.
///
/// # Examples
///
/// ```
/// use hfl_nn::Scratch;
///
/// let mut scratch = Scratch::new();
/// let buf = scratch.take_zeroed(8);
/// assert_eq!(buf, vec![0.0; 8]);
/// scratch.give(buf);
/// // The next take reuses the pooled allocation.
/// let again = scratch.take_zeroed(4);
/// assert_eq!(again.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Hands out a zeroed buffer of `len` elements, reusing a pooled
    /// allocation when one is available.
    #[must_use]
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }

    /// Number of buffers currently pooled.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_on_reuse() {
        let mut s = Scratch::new();
        let mut a = s.take_zeroed(4);
        a.iter_mut().for_each(|v| *v = 7.0);
        s.give(a);
        assert_eq!(s.pooled(), 1);
        let b = s.take_zeroed(6);
        assert_eq!(b, vec![0.0; 6], "pooled buffer must come back zeroed");
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn pool_grows_and_shrinks_with_traffic() {
        let mut s = Scratch::new();
        let a = s.take_zeroed(2);
        let b = s.take_zeroed(2);
        s.give(a);
        s.give(b);
        assert_eq!(s.pooled(), 2);
        let _ = s.take_zeroed(2);
        assert_eq!(s.pooled(), 1);
    }
}
