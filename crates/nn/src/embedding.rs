//! Token embeddings for the instruction-sequence tokenisers.

use rand::Rng;

use crate::tensor::Tensor;

/// A lookup-table embedding: token id → dense vector.
///
/// The paper tokenises and encodes assembly instruction sequences before
/// feeding them to the LSTM (§IV-C); this layer is that encoder.
///
/// # Examples
///
/// ```
/// use hfl_nn::Embedding;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let emb = Embedding::new(100, 16, &mut rng);
/// assert_eq!(emb.forward(42).len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table, `vocab x dim`.
    pub table: Tensor,
}

impl Embedding {
    /// Creates a table for `vocab` tokens of dimension `dim`.
    #[must_use]
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Embedding {
        Embedding {
            table: Tensor::xavier(vocab, dim, rng),
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.table.rows
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.table.cols
    }

    /// Looks a token up (ids wrap modulo the vocabulary).
    #[must_use]
    pub fn forward(&self, token: usize) -> Vec<f32> {
        self.table.row(token % self.table.rows).to_vec()
    }

    /// Batched lookup: one row copy per token, identical to calling
    /// [`Embedding::forward`] per id (ids wrap modulo the vocabulary).
    #[must_use]
    pub fn lookup_batch(&self, tokens: &[usize]) -> Vec<Vec<f32>> {
        tokens.iter().map(|&t| self.forward(t)).collect()
    }

    /// Scatters a gradient back into the table row for `token`.
    pub fn backward(&mut self, token: usize, dvec: &[f32]) {
        let row = token % self.table.rows;
        for (g, d) in self.table.grad_row_mut(row).iter_mut().zip(dvec) {
            *g += d;
        }
    }

    /// The parameter tensors (for the optimiser).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }

    /// Restores optimiser buffers after deserialisation.
    pub fn ensure_buffers(&mut self) {
        self.table.ensure_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_wraps_and_is_consistent() {
        let emb = Embedding::new(10, 4, &mut StdRng::seed_from_u64(0));
        assert_eq!(emb.vocab(), 10);
        assert_eq!(emb.dim(), 4);
        assert_eq!(emb.forward(3), emb.forward(13));
    }

    #[test]
    fn backward_scatters_into_the_right_row() {
        let mut emb = Embedding::new(5, 3, &mut StdRng::seed_from_u64(0));
        emb.backward(2, &[1.0, 2.0, 3.0]);
        emb.backward(2, &[1.0, 0.0, 0.0]);
        assert_eq!(&emb.table.grad[6..9], &[2.0, 2.0, 3.0]);
        assert!(emb.table.grad[..6].iter().all(|&g| g == 0.0));
        assert!(emb.table.grad[9..].iter().all(|&g| g == 0.0));
    }
}
