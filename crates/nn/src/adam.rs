//! The Adam optimiser with global-norm gradient clipping.

use crate::tensor::Tensor;

/// Adam optimiser state (β₁/β₂ schedules shared across all tensors).
///
/// The paper trains both the instruction generator and the predictor with a
/// learning rate of `1e-4` (§V-A); [`Adam::paper_default`] encodes that.
///
/// # Examples
///
/// ```
/// use hfl_nn::{Adam, Tensor};
///
/// let mut t = Tensor::zeros(2, 2);
/// t.grad = vec![1.0; 4];
/// let mut adam = Adam::new(0.1);
/// adam.step(&mut [&mut t]);
/// assert!(t.data.iter().all(|&w| w < 0.0), "moved against the gradient");
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    /// Global-norm clip threshold (`None` disables clipping).
    pub clip_norm: Option<f32>,
    t: u64,
}

impl Adam {
    /// Creates an optimiser with standard β parameters.
    #[must_use]
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            t: 0,
        }
    }

    /// The paper's configuration: learning rate `1e-4`.
    #[must_use]
    pub fn paper_default() -> Adam {
        Adam::new(1e-4)
    }

    /// Number of update steps taken.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restores the step counter from a checkpoint so bias correction
    /// resumes on the exact same schedule.
    pub fn restore_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one update to every tensor and clears their gradients.
    pub fn step(&mut self, params: &mut [&mut Tensor]) {
        self.t += 1;
        // Global-norm clipping across all tensors.
        let scale = match self.clip_norm {
            Some(max) => {
                let norm: f32 = params.iter().map(|p| p.grad_norm_sq()).sum::<f32>().sqrt();
                if norm > max && norm > 0.0 {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            for i in 0..p.data.len() {
                let g = p.grad[i] * scale;
                p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * g;
                p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * g * g;
                let mhat = p.m[i] / bc1;
                let vhat = p.v[i] / bc2;
                p.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
            // The weights moved: any cached transposed copy is stale.
            p.invalidate_transpose();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam must minimise a simple quadratic.
    #[test]
    fn minimises_a_quadratic() {
        let mut t = Tensor::zeros(1, 2);
        t.data = vec![5.0, -3.0];
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            // L = 0.5 * ||x - [1, 2]||^2, grad = x - [1,2]
            t.grad[0] = t.data[0] - 1.0;
            t.grad[1] = t.data[1] - 2.0;
            adam.step(&mut [&mut t]);
        }
        assert!((t.data[0] - 1.0).abs() < 0.05, "{:?}", t.data);
        assert!((t.data[1] - 2.0).abs() < 0.05, "{:?}", t.data);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn step_clears_gradients() {
        let mut t = Tensor::zeros(1, 2);
        t.grad = vec![1.0, 1.0];
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut t]);
        assert_eq!(t.grad, vec![0.0, 0.0]);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut a = Tensor::zeros(1, 1);
        let mut b = Tensor::zeros(1, 1);
        a.grad = vec![1e6];
        b.grad = vec![1e6];
        let mut adam = Adam::new(0.1);
        adam.clip_norm = Some(1.0);
        adam.step(&mut [&mut a, &mut b]);
        // With clipping, the first-step Adam update is bounded by lr.
        assert!(a.data[0].abs() <= 0.11, "{}", a.data[0]);
    }

    #[test]
    fn unclipped_huge_gradient_still_bounded_by_adam() {
        // Adam's normalisation bounds the per-step move to ~lr regardless.
        let mut t = Tensor::zeros(1, 1);
        t.grad = vec![1e9];
        let mut adam = Adam::new(0.01);
        adam.clip_norm = None;
        adam.step(&mut [&mut t]);
        assert!(t.data[0].abs() <= 0.011);
    }

    #[test]
    fn paper_default_learning_rate() {
        let adam = Adam::paper_default();
        assert!((adam.lr - 1e-4).abs() < 1e-9);
    }
}
