//! Neural-network substrate for the HFL reproduction.
//!
//! The paper builds its instruction generator and hardware-coverage
//! predictor on LSTMs trained with PyTorch; Rust's ML ecosystem has no
//! mature equivalent for LSTM + PPO training, so this crate implements the
//! required pieces from scratch (see `DESIGN.md`, substitution table):
//!
//! - [`Tensor`]: dense f32 parameters with gradients and Adam moments,
//! - [`Embedding`], [`Linear`], [`Lstm`]: the layers both models use, with
//!   exact analytic gradients (validated against numerical differentiation
//!   in the test suite),
//! - [`ops`]: softmax/cross-entropy/BCE losses and categorical sampling,
//! - [`Adam`]: the optimiser, defaulting to the paper's `1e-4` learning
//!   rate.
//!
//! Everything is deterministic given a seeded `rand` RNG.
//!
//! # Examples
//!
//! Train a one-layer LSTM to push its outputs toward zero:
//!
//! ```
//! use hfl_nn::{Adam, Lstm};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut lstm = Lstm::new(4, 8, 1, &mut rng);
//! let mut adam = Adam::new(1e-2);
//! let xs = vec![vec![0.5; 4]; 3];
//! for _ in 0..10 {
//!     let trace = lstm.forward_seq(&xs);
//!     let d_out: Vec<Vec<f32>> = trace.outputs.clone(); // dL/dh = h
//!     lstm.backward_seq(&trace, &d_out);
//!     adam.step(&mut lstm.params_mut());
//! }
//! ```

pub mod adam;
pub mod embedding;
pub mod linear;
pub mod lstm;
pub mod ops;
pub mod persist;
pub mod scratch;
pub mod tensor;

pub use adam::Adam;
pub use embedding::Embedding;
pub use linear::Linear;
pub use lstm::{Lstm, LstmCell, LstmState, LstmTrace};
pub use persist::{Codec, PersistError, SnapshotReader, SnapshotWriter};
pub use scratch::Scratch;
pub use tensor::Tensor;
