//! The parameter tensor: a dense f32 matrix with gradient and Adam moments.

use std::cell::RefCell;

use rand::Rng;

/// A dense row-major f32 matrix carrying its gradient accumulator and Adam
/// optimiser moments.
///
/// Vectors are represented as single-column matrices. All the layers in this
/// crate own their parameters as `Tensor`s and hand them to
/// [`crate::adam::Adam::step`] for updates.
///
/// The batched forward path ([`Tensor::matvec_batch`]) additionally caches a
/// transposed copy of `data`, built lazily on first use. [`crate::Adam`]
/// invalidates it on every optimiser step; code that writes `data` directly
/// (hand-built tensors, deserialisation) must call
/// [`Tensor::invalidate_transpose`] before the next batched forward.
///
/// # Examples
///
/// ```
/// use hfl_nn::Tensor;
///
/// let t = Tensor::zeros(2, 3);
/// assert_eq!(t.rows, 2);
/// assert_eq!(t.at(1, 2), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major values.
    pub data: Vec<f32>,
    /// Gradient accumulator (same shape as `data`).
    pub grad: Vec<f32>,
    /// Adam first moment.
    pub m: Vec<f32>,
    /// Adam second moment.
    pub v: Vec<f32>,
    /// Lazily built column-major (transposed) copy of `data` for the
    /// batched forward kernels; empty means invalid. Interior-mutable so
    /// read-only forward passes can populate it.
    transposed: RefCell<Vec<f32>>,
}

impl Tensor {
    /// An all-zero tensor.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        let n = rows * cols;
        Tensor {
            rows,
            cols,
            data: vec![0.0; n],
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
            transposed: RefCell::new(Vec::new()),
        }
    }

    /// Xavier/Glorot-uniform initialisation for a `rows x cols` weight.
    #[must_use]
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        for w in &mut t.data {
            *w = rng.gen_range(-bound..bound);
        }
        t
    }

    /// Builds a tensor from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                t.data[r * cols + c] = f(r, c);
            }
        }
        t
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Mutable access to the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        &mut self.data[row * self.cols + col]
    }

    /// One row as a slice.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// One row as a mutable slice (used for embedding-table updates).
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The gradient row for `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn grad_row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.grad[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (w, xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            *yr = acc;
        }
        y
    }

    /// Transposed matrix-vector product `selfᵀ * y` (used for input
    /// gradients).
    ///
    /// # Panics
    /// Panics if `y.len() != self.rows`.
    #[must_use]
    pub fn matvec_t(&self, y: &[f32]) -> Vec<f32> {
        assert_eq!(y.len(), self.rows, "matvec_t dimension mismatch");
        let mut x = vec![0.0f32; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            let row = self.row(r);
            if yr == 0.0 {
                continue;
            }
            for (xc, w) in x.iter_mut().zip(row) {
                *xc += w * yr;
            }
        }
        x
    }

    /// Drops the cached transposed weights. [`crate::Adam::step`] calls
    /// this automatically; any other code that mutates `data` in place must
    /// call it before the next [`Tensor::matvec_batch`].
    pub fn invalidate_transpose(&self) {
        self.transposed.borrow_mut().clear();
    }

    /// Runs `f` with the column-major copy of `data` (`wt[c * rows + r] =
    /// data[r * cols + c]`), building it if the cache is invalid.
    fn with_transposed<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        {
            let mut cache = self.transposed.borrow_mut();
            if cache.len() != self.data.len() {
                cache.clear();
                cache.reserve_exact(self.data.len());
                for c in 0..self.cols {
                    for r in 0..self.rows {
                        cache.push(self.data[r * self.cols + c]);
                    }
                }
            }
        }
        f(&self.transposed.borrow())
    }

    /// Batched matrix-vector product: computes `self * x_b` for every
    /// `cols`-length chunk `x_b` of `xs_flat`, writing the results as
    /// consecutive `rows`-length chunks of `out` (cleared and resized).
    ///
    /// Each output element accumulates its products in the same index
    /// order as [`Tensor::matvec`], so the results are bit-identical to
    /// `batch` separate `matvec` calls — but the kernel iterates the
    /// cached transposed weights column-by-column, which turns the
    /// sequential dot-product dependency chain into independent per-output
    /// updates the compiler can vectorise without reassociating anything.
    ///
    /// # Panics
    /// Panics if `xs_flat.len() != batch * self.cols`.
    pub fn matvec_batch(&self, xs_flat: &[f32], batch: usize, out: &mut Vec<f32>) {
        assert_eq!(
            xs_flat.len(),
            batch * self.cols,
            "matvec_batch dimension mismatch"
        );
        let rows = self.rows;
        out.clear();
        out.resize(batch * rows, 0.0);
        self.with_transposed(|wt| {
            for (x, y) in xs_flat
                .chunks_exact(self.cols)
                .zip(out.chunks_exact_mut(rows))
            {
                for (i, &xi) in x.iter().enumerate() {
                    let col = &wt[i * rows..(i + 1) * rows];
                    for (yo, &w) in y.iter_mut().zip(col) {
                        *yo += w * xi;
                    }
                }
            }
        });
    }

    /// Accumulates the outer product `y xᵀ` into the gradient (the weight
    /// gradient of `y = W x`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn grad_outer(&mut self, y: &[f32], x: &[f32]) {
        assert_eq!(y.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for (r, yr) in y.iter().enumerate() {
            if *yr == 0.0 {
                continue;
            }
            let grow = &mut self.grad[r * self.cols..(r + 1) * self.cols];
            for (g, xv) in grow.iter_mut().zip(x) {
                *g += yr * xv;
            }
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Restores optimiser/gradient buffers sized to `data` (used after
    /// hand-built or partially populated tensors).
    pub fn ensure_buffers(&mut self) {
        let n = self.data.len();
        if self.grad.len() != n {
            self.grad = vec![0.0; n];
        }
        if self.m.len() != n {
            self.m = vec![0.0; n];
        }
        if self.v.len() != n {
            self.v = vec![0.0; n];
        }
        // Deserialisation replaced `data`; any cached transpose is stale.
        self.invalidate_transpose();
    }

    /// Squared L2 norm of the gradient.
    #[must_use]
    pub fn grad_norm_sq(&self) -> f32 {
        self.grad.iter().map(|g| g * g).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_indexing() {
        let mut t = Tensor::zeros(3, 4);
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        *t.at_mut(1, 2) = 5.0;
        assert_eq!(t.at(1, 2), 5.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::xavier(16, 16, &mut rng);
        let bound = (6.0 / 32.0f32).sqrt();
        assert!(t.data.iter().all(|w| w.abs() <= bound));
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor::xavier(16, 16, &mut rng2);
        assert_eq!(t.data, t2.data, "seeded init is deterministic");
        assert!(t.data.iter().any(|w| *w != 0.0));
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        // [[0,1,2],[3,4,5]] * [1,1,1] = [3,12]
        assert_eq!(t.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        // transpose: [[0,3],[1,4],[2,5]] * [1,2] = [6,9,12]
        assert_eq!(t.matvec_t(&[1.0, 2.0]), vec![6.0, 9.0, 12.0]);
    }

    #[test]
    fn grad_outer_accumulates() {
        let mut t = Tensor::zeros(2, 2);
        t.grad_outer(&[1.0, 2.0], &[3.0, 4.0]);
        t.grad_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(t.grad, vec![4.0, 5.0, 6.0, 8.0]);
        assert!(t.grad_norm_sq() > 0.0);
        t.zero_grad();
        assert_eq!(t.grad_norm_sq(), 0.0);
    }

    #[test]
    fn matvec_batch_is_bitwise_identical_to_matvec() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::xavier(7, 5, &mut rng);
        let xs: Vec<f32> = (0..3 * 5).map(|i| (i as f32 * 0.61).sin()).collect();
        let mut out = Vec::new();
        t.matvec_batch(&xs, 3, &mut out);
        for (b, x) in xs.chunks_exact(5).enumerate() {
            let scalar = t.matvec(x);
            for (a, s) in out[b * 7..(b + 1) * 7].iter().zip(&scalar) {
                assert_eq!(a.to_bits(), s.to_bits(), "batch row {b}");
            }
        }
    }

    #[test]
    fn invalidate_transpose_picks_up_data_mutations() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut t = Tensor::xavier(4, 3, &mut rng);
        let x = vec![0.5f32, -0.25, 1.0];
        let mut out = Vec::new();
        t.matvec_batch(&x, 1, &mut out); // populates the cache
        t.data[0] = 42.0;
        t.invalidate_transpose();
        t.matvec_batch(&x, 1, &mut out);
        let scalar = t.matvec(&x);
        assert_eq!(out, scalar, "cache must rebuild after invalidation");
    }

    #[test]
    fn checkpoint_reload_restores_buffers() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(4, 4, &mut rng);
        // A tensor with missing transient buffers gets them rebuilt.
        let mut stripped = t.clone();
        stripped.grad.clear();
        stripped.m.clear();
        stripped.v.clear();
        stripped.ensure_buffers();
        assert_eq!(stripped.grad.len(), t.len());
        assert_eq!(stripped.m.len(), t.len());
        assert_eq!(stripped.data, t.data);
    }
}
