//! Activation functions, losses and sampling utilities.

use rand::Rng;

/// Numerically stable sigmoid.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softmax over a logit slice.
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax with a temperature; higher temperatures flatten the
/// distribution (exploration), lower ones sharpen it (exploitation).
///
/// # Panics
/// Panics if `temperature` is not strictly positive.
#[must_use]
pub fn softmax_with_temperature(logits: &[f32], temperature: f32) -> Vec<f32> {
    assert!(temperature > 0.0, "temperature must be positive");
    let scaled: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
    softmax(&scaled)
}

/// Cross-entropy loss of a softmax distribution against a target class,
/// returning `(loss, dlogits)`.
///
/// The gradient is the classic `softmax - onehot`.
#[must_use]
pub fn cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let probs = softmax(logits);
    let loss = -probs[target].max(1e-12).ln();
    let mut dlogits = probs;
    dlogits[target] -= 1.0;
    (loss, dlogits)
}

/// Per-element binary cross-entropy with logits against 0/1 targets,
/// returning `(mean loss, dlogits)`.
///
/// This is the multi-label loss the hardware-coverage predictor trains
/// with (one sigmoid per coverage point).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn bce_with_logits(logits: &[f32], targets: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), targets.len());
    assert!(!logits.is_empty());
    let n = logits.len() as f32;
    let mut loss = 0.0f32;
    let mut dlogits = vec![0.0f32; logits.len()];
    for (i, (&z, &t)) in logits.iter().zip(targets).enumerate() {
        // Stable BCE-with-logits: max(z,0) - z*t + ln(1 + e^{-|z|}).
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        dlogits[i] = (sigmoid(z) - t) / n;
    }
    (loss / n, dlogits)
}

/// The log-probability of `action` under `softmax(logits)`.
#[must_use]
pub fn log_prob(logits: &[f32], action: usize) -> f32 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits[action] - log_sum
}

/// Samples an index from a probability distribution.
///
/// # Panics
/// Panics if `probs` is empty.
pub fn sample_categorical<R: Rng>(probs: &[f32], rng: &mut R) -> usize {
    assert!(!probs.is_empty());
    let r: f32 = rng.gen();
    let mut acc = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Index of the maximum element (ties resolve to the first).
///
/// # Panics
/// Panics if `values` is empty.
#[must_use]
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty());
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Elementwise `tanh` derivative from the activated value.
#[must_use]
pub fn dtanh(tanh_value: f32) -> f32 {
    1.0 - tanh_value * tanh_value
}

/// Sigmoid derivative from the activated value.
#[must_use]
pub fn dsigmoid(sig_value: f32) -> f32 {
    sig_value * (1.0 - sig_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(10.0) - 1.0).abs() < 1e-4);
        assert!(sigmoid(-10.0) < 1e-4);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        // Extreme inputs stay finite.
        assert!(sigmoid(1e9).is_finite());
        assert!(sigmoid(-1e9).is_finite());
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Huge logits must not overflow.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn temperature_flattens_and_sharpens() {
        let logits = [0.0, 1.0];
        let hot = softmax_with_temperature(&logits, 10.0);
        let cold = softmax_with_temperature(&logits, 0.1);
        assert!(hot[1] - hot[0] < cold[1] - cold[0]);
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = [0.5, -0.5, 2.0];
        let (loss, grad) = cross_entropy(&logits, 2);
        let probs = softmax(&logits);
        assert!(loss > 0.0);
        assert!((grad[0] - probs[0]).abs() < 1e-6);
        assert!((grad[2] - (probs[2] - 1.0)).abs() < 1e-6);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_numeric_gradient_check() {
        let logits = vec![0.3f32, -1.2, 0.7, 0.1];
        let (_, grad) = cross_entropy(&logits, 1);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let numeric = (cross_entropy(&plus, 1).0 - cross_entropy(&minus, 1).0) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-2,
                "grad[{i}]: analytic {} vs numeric {}",
                grad[i],
                numeric
            );
        }
    }

    #[test]
    fn bce_numeric_gradient_check() {
        let logits = vec![0.5f32, -2.0, 3.0];
        let targets = vec![1.0f32, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let numeric = (bce_with_logits(&plus, &targets).0
                - bce_with_logits(&minus, &targets).0)
                / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-2,
                "grad[{i}]: analytic {} vs numeric {}",
                grad[i],
                numeric
            );
        }
    }

    #[test]
    fn log_prob_matches_softmax() {
        let logits = [0.1f32, 0.9, -0.4];
        let probs = softmax(&logits);
        for (i, p) in probs.iter().enumerate() {
            assert!((log_prob(&logits, i) - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(42);
        let probs = [0.05f32, 0.9, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert!(counts[1] > 1500, "mode dominates: {counts:?}");
        assert!(counts[0] > 0 && counts[2] > 0, "tails appear: {counts:?}");
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn activation_derivatives() {
        let t: f32 = 0.5f32.tanh();
        assert!((dtanh(t) - (1.0 - t * t)).abs() < 1e-7);
        let s = sigmoid(0.7);
        assert!((dsigmoid(s) - s * (1.0 - s)).abs() < 1e-7);
    }
}
