//! LSTM layers with full backpropagation through time (BPTT).
//!
//! The paper's generator and predictor are both two-layer LSTMs with a
//! hidden size of 256 (§V-A); this module provides the recurrent core they
//! share. Gates are packed in `[input, forget, cell, output]` order.

use rand::Rng;

use crate::ops::{dsigmoid, dtanh, sigmoid};
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// One LSTM layer's parameters.
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input weights, `4H x In`.
    pub wx: Tensor,
    /// Recurrent weights, `4H x H`.
    pub wh: Tensor,
    /// Gate biases, `4H x 1`.
    pub b: Tensor,
    hidden: usize,
}

/// Saved activations for one `(timestep, layer)` forward step.
#[derive(Debug, Clone)]
struct CellCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
}

impl LstmCell {
    /// Creates a cell with Xavier weights and a forget-gate bias of 1
    /// (the standard trick for stable long-range training).
    #[must_use]
    pub fn new<R: Rng>(in_dim: usize, hidden: usize, rng: &mut R) -> LstmCell {
        let mut b = Tensor::zeros(4 * hidden, 1);
        for fbias in &mut b.data[hidden..2 * hidden] {
            *fbias = 1.0;
        }
        LstmCell {
            wx: Tensor::xavier(4 * hidden, in_dim, rng),
            wh: Tensor::xavier(4 * hidden, hidden, rng),
            b,
            hidden,
        }
    }

    /// Hidden dimension.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Rebuilds a cell from persisted tensors; `None` if the shapes are
    /// inconsistent.
    #[must_use]
    pub fn from_parts(wx: Tensor, wh: Tensor, b: Tensor, hidden: usize) -> Option<LstmCell> {
        let ok = wx.rows == 4 * hidden
            && wh.rows == 4 * hidden
            && wh.cols == hidden
            && b.rows == 4 * hidden
            && b.cols == 1;
        ok.then_some(LstmCell { wx, wh, b, hidden })
    }

    fn forward(
        &self,
        x: &[f32],
        h_prev: &[f32],
        c_prev: &[f32],
    ) -> (Vec<f32>, Vec<f32>, CellCache) {
        let h = self.hidden;
        let mut z = self.wx.matvec(x);
        let zh = self.wh.matvec(h_prev);
        for ((zv, zhv), bv) in z.iter_mut().zip(&zh).zip(&self.b.data) {
            *zv += zhv + bv;
        }
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[h + k]);
            g[k] = z[2 * h + k].tanh();
            o[k] = sigmoid(z[3 * h + k]);
        }
        let mut c = vec![0.0; h];
        let mut hout = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            hout[k] = o[k] * c[k].tanh();
        }
        let cache = CellCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
        };
        (hout, c, cache)
    }

    /// Batched one-step forward of `batch` hypothetical continuations of a
    /// shared `(h_prev, c_prev)` state. The input-weight product runs as
    /// one fused GEMM over all inputs ([`Tensor::matvec_batch`]) and the
    /// recurrent term `Wh·h_prev + b` is computed once and shared, so the
    /// per-candidate cost drops to a single GEMM slice plus the gate
    /// non-linearities. Writes each continuation's hidden/cell vectors as
    /// consecutive chunks of `h_out`/`c_out` (cleared and resized).
    ///
    /// Bit-identical to `batch` separate [`LstmCell::forward`] calls: every
    /// output element accumulates in the same order.
    ///
    /// # Panics
    /// Panics on input/state dimension mismatches.
    // Hot-path signature: flat in/out buffers avoid per-call allocation,
    // which is the whole point of this function.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_batch(
        &self,
        xs_flat: &[f32],
        batch: usize,
        h_prev: &[f32],
        c_prev: &[f32],
        h_out: &mut Vec<f32>,
        c_out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) {
        let h = self.hidden;
        assert_eq!(h_prev.len(), h, "forward_batch state dimension");
        assert_eq!(c_prev.len(), h, "forward_batch state dimension");
        let mut z = scratch.take_zeroed(0);
        self.wx.matvec_batch(xs_flat, batch, &mut z);
        // Shared recurrent contribution: the scalar path adds `zh + b` to
        // each gate pre-activation, so precombining them is exact.
        let mut zhb = self.wh.matvec(h_prev);
        for (zhv, bv) in zhb.iter_mut().zip(&self.b.data) {
            *zhv += bv;
        }
        h_out.clear();
        h_out.resize(batch * h, 0.0);
        c_out.clear();
        c_out.resize(batch * h, 0.0);
        for ((zb, hb), cb) in z
            .chunks_exact_mut(4 * h)
            .zip(h_out.chunks_exact_mut(h))
            .zip(c_out.chunks_exact_mut(h))
        {
            for (zv, zhv) in zb.iter_mut().zip(&zhb) {
                *zv += zhv;
            }
            for k in 0..h {
                let i = sigmoid(zb[k]);
                let f = sigmoid(zb[h + k]);
                let g = zb[2 * h + k].tanh();
                let o = sigmoid(zb[3 * h + k]);
                let c = f * c_prev[k] + i * g;
                cb[k] = c;
                hb[k] = o * c.tanh();
            }
        }
        scratch.give(z);
    }

    /// Backward through one step. Returns `(dx, dh_prev, dc_prev)`.
    fn backward(
        &mut self,
        cache: &CellCache,
        dh: &[f32],
        dc_next: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let mut dz = vec![0.0f32; 4 * h];
        let mut dc_prev = vec![0.0f32; h];
        for k in 0..h {
            let tc = cache.c[k].tanh();
            let do_ = dh[k] * tc;
            let dc = dc_next[k] + dh[k] * cache.o[k] * dtanh(tc);
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dz[k] = di * dsigmoid(cache.i[k]);
            dz[h + k] = df * dsigmoid(cache.f[k]);
            dz[2 * h + k] = dg * dtanh(cache.g[k]);
            dz[3 * h + k] = do_ * dsigmoid(cache.o[k]);
            dc_prev[k] = dc * cache.f[k];
        }
        self.wx.grad_outer(&dz, &cache.x);
        self.wh.grad_outer(&dz, &cache.h_prev);
        for (gb, d) in self.b.grad.iter_mut().zip(&dz) {
            *gb += d;
        }
        let dx = self.wx.matvec_t(&dz);
        let dh_prev = self.wh.matvec_t(&dz);
        (dx, dh_prev, dc_prev)
    }

    /// The cell's parameter tensors (for the optimiser).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Restores optimiser buffers after deserialisation.
    pub fn ensure_buffers(&mut self) {
        self.wx.ensure_buffers();
        self.wh.ensure_buffers();
        self.b.ensure_buffers();
    }
}

/// Running hidden/cell state for streaming generation.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden vectors, one per layer.
    pub h: Vec<Vec<f32>>,
    /// Cell vectors, one per layer.
    pub c: Vec<Vec<f32>>,
}

/// Saved forward activations for a whole sequence (consumed by
/// [`Lstm::backward_seq`]).
#[derive(Debug, Clone)]
pub struct LstmTrace {
    caches: Vec<Vec<CellCache>>, // [t][layer]
    /// Top-layer hidden vector at each timestep.
    pub outputs: Vec<Vec<f32>>,
}

/// A stack of LSTM layers.
///
/// # Examples
///
/// ```
/// use hfl_nn::Lstm;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let lstm = Lstm::new(8, 16, 2, &mut rng);
/// let xs = vec![vec![0.1; 8]; 5];
/// let trace = lstm.forward_seq(&xs);
/// assert_eq!(trace.outputs.len(), 5);
/// assert_eq!(trace.outputs[0].len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    /// The stacked cells, bottom first.
    pub cells: Vec<LstmCell>,
}

impl Lstm {
    /// Creates `layers` stacked cells mapping `in_dim` → `hidden`.
    ///
    /// # Panics
    /// Panics if `layers == 0`.
    #[must_use]
    pub fn new<R: Rng>(in_dim: usize, hidden: usize, layers: usize, rng: &mut R) -> Lstm {
        assert!(layers > 0, "at least one layer");
        let mut cells = Vec::with_capacity(layers);
        cells.push(LstmCell::new(in_dim, hidden, rng));
        for _ in 1..layers {
            cells.push(LstmCell::new(hidden, hidden, rng));
        }
        Lstm { cells }
    }

    /// Hidden dimension.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.cells[0].hidden()
    }

    /// Number of layers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// A zeroed state for streaming.
    #[must_use]
    pub fn zero_state(&self) -> LstmState {
        LstmState {
            h: self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect(),
            c: self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect(),
        }
    }

    /// One streaming step: feeds `x`, updates `state`, returns the top
    /// hidden vector. Used during generation, where no gradients flow.
    #[must_use]
    pub fn step(&self, x: &[f32], state: &mut LstmState) -> Vec<f32> {
        let mut input = x.to_vec();
        for (l, cell) in self.cells.iter().enumerate() {
            let (h, c, _) = cell.forward(&input, &state.h[l], &state.c[l]);
            state.h[l] = h.clone();
            state.c[l] = c;
            input = h;
        }
        input
    }

    /// Batched streaming step: treats each `xs[b]` as a hypothetical
    /// one-step continuation of the shared `state` (which is left
    /// untouched) and returns each continuation's top-layer hidden vector.
    /// Bit-identical to cloning `state` and calling [`Lstm::step`] once per
    /// input — this is the candidate-screening primitive of the fuzzing
    /// loop, costing one fused GEMM per gate block per layer instead of
    /// `B` sequential matvecs.
    ///
    /// # Panics
    /// Panics if the inputs' lengths disagree with each other or the
    /// bottom cell's input dimension.
    #[must_use]
    pub fn step_batch(
        &self,
        xs: &[&[f32]],
        state: &LstmState,
        scratch: &mut Scratch,
    ) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let batch = xs.len();
        let in_dim = self.cells[0].wx.cols;
        let mut input = scratch.take_zeroed(batch * in_dim);
        for (chunk, x) in input.chunks_exact_mut(in_dim).zip(xs) {
            assert_eq!(x.len(), in_dim, "step_batch input dimension");
            chunk.copy_from_slice(x);
        }
        let mut h_out = scratch.take_zeroed(0);
        let mut c_out = scratch.take_zeroed(0);
        for (l, cell) in self.cells.iter().enumerate() {
            cell.forward_batch(
                &input,
                batch,
                &state.h[l],
                &state.c[l],
                &mut h_out,
                &mut c_out,
                scratch,
            );
            std::mem::swap(&mut input, &mut h_out);
        }
        let top = self.cells.last().expect("at least one layer").hidden();
        let outs = input.chunks_exact(top).map(<[f32]>::to_vec).collect();
        scratch.give(input);
        scratch.give(h_out);
        scratch.give(c_out);
        outs
    }

    /// Forward over a whole sequence, saving activations for BPTT.
    #[must_use]
    pub fn forward_seq(&self, xs: &[Vec<f32>]) -> LstmTrace {
        let mut state = self.zero_state();
        let mut caches = Vec::with_capacity(xs.len());
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            let mut input = x.clone();
            let mut step_caches = Vec::with_capacity(self.cells.len());
            for (l, cell) in self.cells.iter().enumerate() {
                let (h, c, cache) = cell.forward(&input, &state.h[l], &state.c[l]);
                state.h[l] = h.clone();
                state.c[l] = c;
                step_caches.push(cache);
                input = h;
            }
            caches.push(step_caches);
            outputs.push(input);
        }
        LstmTrace { caches, outputs }
    }

    /// Backward through time. `d_outputs[t]` is the loss gradient w.r.t.
    /// the top-layer hidden vector at step `t` (zero vectors for unused
    /// steps). Returns the gradient w.r.t. each input vector.
    ///
    /// # Panics
    /// Panics if `d_outputs.len()` differs from the trace length.
    pub fn backward_seq(&mut self, trace: &LstmTrace, d_outputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(d_outputs.len(), trace.caches.len(), "gradient/trace length");
        let layers = self.cells.len();
        let mut dh_next: Vec<Vec<f32>> = self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect();
        let mut dc_next: Vec<Vec<f32>> = self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect();
        let mut dxs = vec![Vec::new(); trace.caches.len()];
        for t in (0..trace.caches.len()).rev() {
            // Gradient flowing into the top layer's hidden output.
            let mut dh_from_above = d_outputs[t].clone();
            for l in (0..layers).rev() {
                let mut dh = dh_from_above;
                for (a, b) in dh.iter_mut().zip(&dh_next[l]) {
                    *a += b;
                }
                let (dx, dh_prev, dc_prev) =
                    self.cells[l].backward(&trace.caches[t][l], &dh, &dc_next[l]);
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                dh_from_above = dx;
            }
            dxs[t] = dh_from_above;
        }
        dxs
    }

    /// All parameter tensors (for the optimiser).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.cells
            .iter_mut()
            .flat_map(LstmCell::params_mut)
            .collect()
    }

    /// Restores optimiser buffers after deserialisation.
    pub fn ensure_buffers(&mut self) {
        for cell in &mut self.cells {
            cell.ensure_buffers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(seq: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..seq)
            .map(|t| {
                (0..dim)
                    .map(|i| ((t * dim + i) as f32 * 0.37).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    /// Scalar test loss: half the sum of squares of every output.
    fn loss_of(lstm: &Lstm, xs: &[Vec<f32>]) -> f32 {
        lstm.forward_seq(xs)
            .outputs
            .iter()
            .flat_map(|h| h.iter())
            .map(|v| v * v)
            .sum::<f32>()
            * 0.5
    }

    #[test]
    fn shapes_and_determinism() {
        let lstm = Lstm::new(3, 5, 2, &mut StdRng::seed_from_u64(0));
        assert_eq!(lstm.hidden(), 5);
        assert_eq!(lstm.layers(), 2);
        let xs = toy_inputs(4, 3);
        let t1 = lstm.forward_seq(&xs);
        let t2 = lstm.forward_seq(&xs);
        assert_eq!(t1.outputs, t2.outputs);
        assert!(t1.outputs.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn streaming_step_matches_sequence_forward() {
        let lstm = Lstm::new(3, 4, 2, &mut StdRng::seed_from_u64(1));
        let xs = toy_inputs(6, 3);
        let trace = lstm.forward_seq(&xs);
        let mut state = lstm.zero_state();
        for (t, x) in xs.iter().enumerate() {
            let h = lstm.step(x, &mut state);
            for (a, b) in h.iter().zip(&trace.outputs[t]) {
                assert!((a - b).abs() < 1e-6, "t={t}");
            }
        }
    }

    #[test]
    fn outputs_depend_on_history() {
        let lstm = Lstm::new(2, 4, 1, &mut StdRng::seed_from_u64(2));
        let a = lstm.forward_seq(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
        let b = lstm.forward_seq(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        // Same final input, different history: outputs must differ.
        assert_ne!(a.outputs[1], b.outputs[1]);
    }

    #[test]
    fn bptt_numeric_gradient_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lstm = Lstm::new(3, 4, 2, &mut rng);
        let xs = toy_inputs(3, 3);
        let trace = lstm.forward_seq(&xs);
        let d_out: Vec<Vec<f32>> = trace.outputs.clone(); // dL/dh = h
        let dxs = lstm.backward_seq(&trace, &d_out);
        let eps = 1e-2;

        // Weight gradients of both layers (sampled to keep the test fast).
        for l in 0..2 {
            let n = lstm.cells[l].wx.len();
            for idx in (0..n).step_by(7) {
                let orig = lstm.cells[l].wx.data[idx];
                lstm.cells[l].wx.data[idx] = orig + eps;
                let lp = loss_of(&lstm, &xs);
                lstm.cells[l].wx.data[idx] = orig - eps;
                let lm = loss_of(&lstm, &xs);
                lstm.cells[l].wx.data[idx] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = lstm.cells[l].wx.grad[idx];
                assert!(
                    (numeric - analytic).abs() < 3e-2,
                    "layer {l} wx[{idx}]: analytic {analytic} vs numeric {numeric}"
                );
            }
            let nh = lstm.cells[l].wh.len();
            for idx in (0..nh).step_by(5) {
                let orig = lstm.cells[l].wh.data[idx];
                lstm.cells[l].wh.data[idx] = orig + eps;
                let lp = loss_of(&lstm, &xs);
                lstm.cells[l].wh.data[idx] = orig - eps;
                let lm = loss_of(&lstm, &xs);
                lstm.cells[l].wh.data[idx] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = lstm.cells[l].wh.grad[idx];
                assert!(
                    (numeric - analytic).abs() < 3e-2,
                    "layer {l} wh[{idx}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
        // Bias gradients.
        for idx in 0..lstm.cells[0].b.len() {
            let orig = lstm.cells[0].b.data[idx];
            lstm.cells[0].b.data[idx] = orig + eps;
            let lp = loss_of(&lstm, &xs);
            lstm.cells[0].b.data[idx] = orig - eps;
            let lm = loss_of(&lstm, &xs);
            lstm.cells[0].b.data[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = lstm.cells[0].b.grad[idx];
            assert!(
                (numeric - analytic).abs() < 3e-2,
                "b[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Input gradients.
        for t in 0..xs.len() {
            for i in 0..xs[t].len() {
                let mut xp = xs.clone();
                xp[t][i] += eps;
                let mut xm = xs.clone();
                xm[t][i] -= eps;
                let numeric = (loss_of(&lstm, &xp) - loss_of(&lstm, &xm)) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][i]).abs() < 3e-2,
                    "x[{t}][{i}]: analytic {} vs numeric {numeric}",
                    dxs[t][i]
                );
            }
        }
    }

    #[test]
    fn forget_bias_is_one() {
        let cell = LstmCell::new(3, 4, &mut StdRng::seed_from_u64(0));
        assert!(cell.b.data[4..8].iter().all(|&b| (b - 1.0).abs() < 1e-6));
        assert!(cell.b.data[..4].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn params_enumeration() {
        let mut lstm = Lstm::new(3, 4, 2, &mut StdRng::seed_from_u64(0));
        assert_eq!(lstm.params_mut().len(), 6, "3 tensors per layer");
    }
}
