//! Fully-connected layers.

use rand::Rng;

use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// A fully-connected layer `y = W x + b`.
///
/// Used for the generator's seven output heads and the predictor's output
/// layer (§V-A of the paper: heads are hidden layers with 32 features).
///
/// # Examples
///
/// ```
/// use hfl_nn::Linear;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = Linear::new(4, 2, &mut rng);
/// let y = layer.forward(&[1.0, 0.0]);
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `out x in`.
    pub w: Tensor,
    /// Bias vector, `out x 1`.
    pub b: Tensor,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    #[must_use]
    pub fn new<R: Rng>(out_dim: usize, in_dim: usize, rng: &mut R) -> Linear {
        Linear {
            w: Tensor::xavier(out_dim, in_dim, rng),
            b: Tensor::zeros(out_dim, 1),
        }
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.rows
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.w.cols
    }

    /// Computes `W x + b`.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the input dimension.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.matvec(x);
        for (yv, bv) in y.iter_mut().zip(&self.b.data) {
            *yv += bv;
        }
        y
    }

    /// Batched forward: computes `W x + b` for every input in `xs` through
    /// one fused GEMM ([`Tensor::matvec_batch`]) instead of `B` sequential
    /// matvecs. Bit-identical to calling [`Linear::forward`] per input.
    ///
    /// # Panics
    /// Panics if any input's length differs from the input dimension.
    #[must_use]
    pub fn forward_batch(&self, xs: &[&[f32]], scratch: &mut Scratch) -> Vec<Vec<f32>> {
        let in_dim = self.in_dim();
        let out_dim = self.out_dim();
        let mut flat_in = scratch.take_zeroed(xs.len() * in_dim);
        for (chunk, x) in flat_in.chunks_exact_mut(in_dim).zip(xs) {
            assert_eq!(x.len(), in_dim, "forward_batch dimension mismatch");
            chunk.copy_from_slice(x);
        }
        let mut flat_out = scratch.take_zeroed(0);
        self.w.matvec_batch(&flat_in, xs.len(), &mut flat_out);
        let ys = flat_out
            .chunks_exact(out_dim)
            .map(|y| {
                let mut y = y.to_vec();
                for (yv, bv) in y.iter_mut().zip(&self.b.data) {
                    *yv += bv;
                }
                y
            })
            .collect();
        scratch.give(flat_in);
        scratch.give(flat_out);
        ys
    }

    /// Accumulates gradients for an output gradient `dy` at input `x` and
    /// returns the input gradient.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    #[must_use]
    pub fn backward(&mut self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        self.w.grad_outer(dy, x);
        for (g, d) in self.b.grad.iter_mut().zip(dy) {
            *g += d;
        }
        self.w.matvec_t(dy)
    }

    /// The layer's parameter tensors (for the optimiser).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    /// Restores optimiser buffers after deserialisation.
    pub fn ensure_buffers(&mut self) {
        self.w.ensure_buffers();
        self.b.ensure_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 3, &mut StdRng::seed_from_u64(0));
        l.w.data = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        l.b.data = vec![0.1, -0.1];
        let y = l.forward(&[2.0, 4.0, 6.0]);
        assert!((y[0] - (2.0 - 6.0 + 0.1)).abs() < 1e-6);
        assert!((y[1] - (1.0 + 2.0 + 3.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn numeric_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(3, 4, &mut rng);
        let x: Vec<f32> = (0..4).map(|i| 0.3 * i as f32 - 0.5).collect();
        // Loss: sum of squares of outputs.
        let loss = |l: &Linear, x: &[f32]| -> f32 {
            l.forward(x).iter().map(|y| y * y).sum::<f32>() * 0.5
        };
        let y = layer.forward(&x);
        let dx = layer.backward(&x, &y); // dL/dy = y for this loss
        let eps = 1e-2;
        // Check weight gradients.
        for idx in 0..layer.w.len() {
            let orig = layer.w.data[idx];
            layer.w.data[idx] = orig + eps;
            let lp = loss(&layer, &x);
            layer.w.data[idx] = orig - eps;
            let lm = loss(&layer, &x);
            layer.w.data[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - layer.w.grad[idx]).abs() < 1e-2,
                "w[{idx}]: analytic {} vs numeric {}",
                layer.w.grad[idx],
                numeric
            );
        }
        // Check input gradients.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            assert!(
                (numeric - dx[i]).abs() < 1e-2,
                "x[{i}]: analytic {} vs numeric {numeric}",
                dx[i]
            );
        }
        // Bias gradient equals dy.
        for (g, d) in layer.b.grad.iter().zip(&y) {
            assert!((g - d).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_accumulate_until_cleared() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Linear::new(2, 2, &mut rng);
        let _ = layer.backward(&[1.0, 1.0], &[1.0, 1.0]);
        let g1 = layer.w.grad.clone();
        let _ = layer.backward(&[1.0, 1.0], &[1.0, 1.0]);
        for (a, b) in layer.w.grad.iter().zip(&g1) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        layer.w.zero_grad();
        assert_eq!(layer.w.grad_norm_sq(), 0.0);
    }
}
