//! Checkpointing: a small self-contained binary codec for model
//! parameters.
//!
//! The workspace deliberately carries no serialisation crate, so
//! checkpoints use a simple explicit
//! little-endian layout: a magic tag, a format version, then each tensor
//! as `rows:u64, cols:u64, data:[f32]`. Optimiser moments and gradients
//! are not persisted — a loaded model resumes with fresh Adam state,
//! which is standard for inference/fine-tune checkpoints.

use std::io::{self, Read, Write};

use crate::embedding::Embedding;
use crate::linear::Linear;
use crate::lstm::{Lstm, LstmCell};
use crate::tensor::Tensor;

/// Magic bytes every checkpoint starts with.
pub const MAGIC: &[u8; 4] = b"HFLN";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Types that can round-trip through the checkpoint codec.
pub trait Persist: Sized {
    /// Writes the value.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    fn save<W: Write>(&self, w: &mut W) -> io::Result<()>;

    /// Reads a value written by [`Persist::save`].
    ///
    /// # Errors
    /// Returns `InvalidData` on malformed input, plus any I/O error.
    fn load<R: Read>(r: &mut R) -> io::Result<Self>;
}

/// Writes the checkpoint header.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_header<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())
}

/// Reads and validates the checkpoint header.
///
/// # Errors
/// Returns `InvalidData` if the magic or version does not match.
pub fn read_header<R: Read>(r: &mut R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HFL checkpoint",
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    Ok(())
}

/// Writes a `u64` (little endian).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_u64<W: Write>(w: &mut W, value: u64) -> io::Result<()> {
    w.write_all(&value.to_le_bytes())
}

/// Reads a `u64` (little endian).
///
/// # Errors
/// Propagates I/O errors.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a `u32` (little endian).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_u32<W: Write>(w: &mut W, value: u32) -> io::Result<()> {
    w.write_all(&value.to_le_bytes())
}

/// Reads a `u32` (little endian).
///
/// # Errors
/// Propagates I/O errors.
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes an `f32` (little endian).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_f32<W: Write>(w: &mut W, value: f32) -> io::Result<()> {
    w.write_all(&value.to_le_bytes())
}

/// Reads an `f32` (little endian).
///
/// # Errors
/// Propagates I/O errors.
pub fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

impl Persist for Tensor {
    fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_u64(w, self.rows as u64)?;
        write_u64(w, self.cols as u64)?;
        let mut bytes = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&bytes)
    }

    fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let rows = usize::try_from(read_u64(r)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "tensor rows overflow"))?;
        let cols = usize::try_from(read_u64(r)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "tensor cols overflow"))?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tensor size overflow"))?;
        if n > 1 << 28 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tensor too large",
            ));
        }
        let mut bytes = vec![0u8; n * 4];
        r.read_exact(&mut bytes)?;
        let mut t = Tensor::zeros(rows, cols);
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            t.data[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Ok(t)
    }
}

impl Persist for Linear {
    fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.w.save(w)?;
        self.b.save(w)
    }

    fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let weight = Tensor::load(r)?;
        let bias = Tensor::load(r)?;
        if bias.rows != weight.rows || bias.cols != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "linear shape mismatch",
            ));
        }
        Ok(Linear { w: weight, b: bias })
    }
}

impl Persist for Embedding {
    fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.table.save(w)
    }

    fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        Ok(Embedding {
            table: Tensor::load(r)?,
        })
    }
}

impl Persist for LstmCell {
    fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_u64(w, self.hidden() as u64)?;
        self.wx.save(w)?;
        self.wh.save(w)?;
        self.b.save(w)
    }

    fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let hidden = usize::try_from(read_u64(r)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "hidden overflow"))?;
        let wx = Tensor::load(r)?;
        let wh = Tensor::load(r)?;
        let b = Tensor::load(r)?;
        if wx.rows != 4 * hidden
            || wh.rows != 4 * hidden
            || wh.cols != hidden
            || b.rows != 4 * hidden
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "lstm cell shape mismatch",
            ));
        }
        LstmCell::from_parts(wx, wh, b, hidden)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "lstm cell rebuild failed"))
    }
}

impl Persist for Lstm {
    fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_u64(w, self.cells.len() as u64)?;
        for cell in &self.cells {
            cell.save(w)?;
        }
        Ok(())
    }

    fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let layers = usize::try_from(read_u64(r)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "layer count overflow"))?;
        if layers == 0 || layers > 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible layer count",
            ));
        }
        let mut cells = Vec::with_capacity(layers);
        for _ in 0..layers {
            cells.push(LstmCell::load(r)?);
        }
        Ok(Lstm { cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn header_round_trip_and_rejection() {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        read_header(&mut &buf[..]).unwrap();
        assert!(read_header(&mut &b"XXXX\x01\x00\x00\x00"[..]).is_err());
        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(MAGIC);
        bad_version.extend_from_slice(&99u32.to_le_bytes());
        assert!(read_header(&mut &bad_version[..]).is_err());
    }

    #[test]
    fn tensor_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(7, 5, &mut rng);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Tensor::load(&mut &buf[..]).unwrap();
        assert_eq!(back.rows, 7);
        assert_eq!(back.cols, 5);
        assert_eq!(back.data, t.data);
        assert_eq!(back.grad.len(), t.data.len(), "buffers rebuilt");
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::xavier(4, 4, &mut rng);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Tensor::load(&mut &buf[..]).is_err());
    }

    #[test]
    fn linear_and_embedding_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new(3, 4, &mut rng);
        let mut buf = Vec::new();
        l.save(&mut buf).unwrap();
        let back = Linear::load(&mut &buf[..]).unwrap();
        assert_eq!(
            back.forward(&[0.1, 0.2, 0.3, 0.4]),
            l.forward(&[0.1, 0.2, 0.3, 0.4])
        );

        let e = Embedding::new(11, 6, &mut rng);
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        let back = Embedding::load(&mut &buf[..]).unwrap();
        assert_eq!(back.forward(7), e.forward(7));
    }

    #[test]
    fn lstm_round_trip_preserves_behaviour() {
        let mut rng = StdRng::seed_from_u64(4);
        let lstm = Lstm::new(5, 8, 2, &mut rng);
        let mut buf = Vec::new();
        lstm.save(&mut buf).unwrap();
        let back = Lstm::load(&mut &buf[..]).unwrap();
        let xs = vec![vec![0.3; 5]; 4];
        assert_eq!(back.forward_seq(&xs).outputs, lstm.forward_seq(&xs).outputs);
    }

    #[test]
    fn shape_mismatch_is_invalid_data() {
        // A Linear whose bias disagrees with its weight must not load.
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = Vec::new();
        Tensor::xavier(3, 4, &mut rng).save(&mut buf).unwrap();
        Tensor::zeros(2, 1).save(&mut buf).unwrap();
        assert!(Linear::load(&mut &buf[..]).is_err());
    }
}
