//! Checkpointing: a small self-contained binary codec plus a versioned,
//! checksummed snapshot container.
//!
//! The workspace deliberately carries no serialisation crate, so everything
//! here is an explicit little-endian layout. Two layers:
//!
//! * [`Codec`] — types that can round-trip through a byte stream. All the
//!   parameter-carrying layers in this crate implement it; higher crates
//!   implement it for their own state. Errors are the typed
//!   [`PersistError`], never a panic, even on corrupt input.
//! * [`SnapshotWriter`] / [`SnapshotReader`] — a named-section container
//!   with a magic tag, format version, a `kind` string identifying what
//!   the snapshot holds, an FNV-1a checksum per section, and a trailing
//!   checksum over the whole stream. Any single-byte corruption or
//!   truncation is rejected with a precise error. [`SnapshotWriter::
//!   write_atomic`] persists via temp-file + rename so a crash mid-write
//!   never leaves a half-written snapshot under the final name.
//!
//! Tensors persist their Adam moments alongside the weights, so a resumed
//! optimiser continues on the exact same trajectory as an uninterrupted
//! run.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::adam::Adam;
use crate::embedding::Embedding;
use crate::linear::Linear;
use crate::lstm::{Lstm, LstmCell};
use crate::tensor::Tensor;

/// Magic bytes every snapshot container starts with.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"HFLS";
/// Current snapshot container format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Upper bound on a single section payload (guards allocation on corrupt
/// input).
const MAX_SECTION_BYTES: u64 = 1 << 31;
/// Upper bound on element counts in vector payloads.
const MAX_ELEMS: u64 = 1 << 28;

/// Why a save or load failed. Corrupt input always maps to a variant that
/// names what went wrong — never a panic.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O error.
    Io(io::Error),
    /// The stream does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The snapshot holds a different kind of state than expected.
    WrongKind {
        /// The kind the caller asked for.
        expected: String,
        /// The kind recorded in the snapshot.
        found: String,
    },
    /// A section's checksum does not match its payload.
    ChecksumMismatch {
        /// The section whose payload is corrupt.
        section: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The section the caller asked for.
        section: String,
    },
    /// Structurally malformed input (truncation, implausible lengths,
    /// shape mismatches, trailing bytes). The message names the field.
    Corrupt(String),
    /// The operation is not supported by this type (e.g. a fuzzer without
    /// checkpoint support).
    Unsupported(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not an HFL snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            PersistError::WrongKind { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected:?}, found {found:?}"
                )
            }
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            PersistError::MissingSection { section } => {
                write!(f, "missing snapshot section {section:?}")
            }
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            PersistError::Unsupported(what) => write!(f, "persistence unsupported: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt("unexpected end of input".to_owned())
        } else {
            PersistError::Io(e)
        }
    }
}

/// Shorthand for building a [`PersistError::Corrupt`].
pub fn corrupt(what: impl Into<String>) -> PersistError {
    PersistError::Corrupt(what.into())
}

/// Types that round-trip through the checkpoint codec.
pub trait Codec: Sized {
    /// Writes the value.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError>;

    /// Reads a value written by [`Codec::save`].
    ///
    /// # Errors
    /// Returns a [`PersistError`] naming the problem on malformed input,
    /// plus any I/O error.
    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError>;

    /// Encodes the value to a byte vector.
    ///
    /// # Errors
    /// Propagates encoding errors.
    fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let mut buf = Vec::new();
        self.save(&mut buf)?;
        Ok(buf)
    }

    /// Decodes a value from `bytes`, requiring every byte to be consumed.
    ///
    /// # Errors
    /// Returns a [`PersistError`] on malformed or trailing input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = bytes;
        let value = Self::load(&mut r)?;
        if !r.is_empty() {
            return Err(corrupt(format!("{} trailing bytes after value", r.len())));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Primitive little-endian helpers.
// ---------------------------------------------------------------------------

macro_rules! scalar_helpers {
    ($($write:ident / $read:ident : $t:ty [$n:expr]),* $(,)?) => {$(
        #[doc = concat!("Writes a `", stringify!($t), "` (little endian).")]
        ///
        /// # Errors
        /// Propagates I/O errors.
        pub fn $write<W: Write>(w: &mut W, value: $t) -> Result<(), PersistError> {
            w.write_all(&value.to_le_bytes())?;
            Ok(())
        }

        #[doc = concat!("Reads a `", stringify!($t), "` (little endian).")]
        ///
        /// # Errors
        /// Propagates I/O errors; EOF maps to [`PersistError::Corrupt`].
        pub fn $read<R: Read>(r: &mut R) -> Result<$t, PersistError> {
            let mut buf = [0u8; $n];
            r.read_exact(&mut buf)?;
            Ok(<$t>::from_le_bytes(buf))
        }
    )*};
}

scalar_helpers!(
    write_u64 / read_u64: u64[8],
    write_u32 / read_u32: u32[4],
    write_f32 / read_f32: f32[4],
    write_f64 / read_f64: f64[8],
);

/// Writes a `bool` as one byte.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_bool<W: Write>(w: &mut W, value: bool) -> Result<(), PersistError> {
    w.write_all(&[u8::from(value)])?;
    Ok(())
}

/// Reads a `bool`; any byte other than 0/1 is corrupt.
///
/// # Errors
/// Returns [`PersistError::Corrupt`] on a non-boolean byte.
pub fn read_bool<R: Read>(r: &mut R) -> Result<bool, PersistError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    match buf[0] {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(corrupt(format!("invalid bool byte {b}"))),
    }
}

/// Writes a `usize` as `u64`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_usize<W: Write>(w: &mut W, value: usize) -> Result<(), PersistError> {
    write_u64(w, value as u64)
}

/// Reads a `usize` written by [`write_usize`], bounded by `max`.
///
/// # Errors
/// Returns [`PersistError::Corrupt`] when the value exceeds `max` (a
/// plausibility guard for counts/lengths) or overflows `usize`.
pub fn read_usize<R: Read>(r: &mut R, max: u64, what: &str) -> Result<usize, PersistError> {
    let raw = read_u64(r)?;
    if raw > max {
        return Err(corrupt(format!("implausible {what}: {raw}")));
    }
    usize::try_from(raw).map_err(|_| corrupt(format!("{what} overflows usize")))
}

/// Writes a length-prefixed UTF-8 string.
///
/// # Errors
/// Propagates I/O errors; rejects strings longer than 64 KiB.
pub fn write_string<W: Write>(w: &mut W, value: &str) -> Result<(), PersistError> {
    if value.len() > 1 << 16 {
        return Err(corrupt(format!("string too long: {} bytes", value.len())));
    }
    write_u32(w, value.len() as u32)?;
    w.write_all(value.as_bytes())?;
    Ok(())
}

/// Reads a string written by [`write_string`].
///
/// # Errors
/// Returns [`PersistError::Corrupt`] on implausible length or invalid
/// UTF-8.
pub fn read_string<R: Read>(r: &mut R) -> Result<String, PersistError> {
    let len = read_u32(r)?;
    if len > 1 << 16 {
        return Err(corrupt(format!("implausible string length {len}")));
    }
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| corrupt("string is not UTF-8"))
}

/// Writes a length-prefixed `f32` vector.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_f32_vec<W: Write>(w: &mut W, values: &[f32]) -> Result<(), PersistError> {
    write_usize(w, values.len())?;
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)?;
    Ok(())
}

/// Reads a vector written by [`write_f32_vec`].
///
/// # Errors
/// Returns [`PersistError::Corrupt`] on implausible length.
pub fn read_f32_vec<R: Read>(r: &mut R) -> Result<Vec<f32>, PersistError> {
    let n = read_usize(r, MAX_ELEMS, "f32 vector length")?;
    read_f32_array(r, n)
}

/// Reads `n` raw little-endian `f32`s.
///
/// # Errors
/// Propagates I/O errors.
pub fn read_f32_array<R: Read>(r: &mut R, n: usize) -> Result<Vec<f32>, PersistError> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Writes `n` raw little-endian `f32`s (no length prefix).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_f32_array<W: Write>(w: &mut W, values: &[f32]) -> Result<(), PersistError> {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)?;
    Ok(())
}

/// Writes a length-prefixed `u64` vector.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_u64_vec<W: Write>(w: &mut W, values: &[u64]) -> Result<(), PersistError> {
    write_usize(w, values.len())?;
    for v in values {
        write_u64(w, *v)?;
    }
    Ok(())
}

/// Reads a vector written by [`write_u64_vec`].
///
/// # Errors
/// Returns [`PersistError::Corrupt`] on implausible length.
pub fn read_u64_vec<R: Read>(r: &mut R) -> Result<Vec<u64>, PersistError> {
    let n = read_usize(r, MAX_ELEMS, "u64 vector length")?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_u64(r)?);
    }
    Ok(values)
}

// ---------------------------------------------------------------------------
// Snapshot container.
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over `bytes` — the per-section and trailer checksum.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds a named-section snapshot and writes it with checksums.
///
/// # Examples
///
/// ```
/// use hfl_nn::persist::{write_u64, SnapshotReader, SnapshotWriter};
///
/// let mut snap = SnapshotWriter::new("example");
/// snap.section("answer", |buf| write_u64(buf, 42)).unwrap();
/// let mut bytes = Vec::new();
/// snap.write_to(&mut bytes).unwrap();
/// let back = SnapshotReader::read_from(&mut &bytes[..]).unwrap();
/// assert_eq!(back.kind(), "example");
/// assert!(back.section("answer").is_ok());
/// ```
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given kind (e.g. `"generator"`,
    /// `"campaign"`).
    #[must_use]
    pub fn new(kind: &str) -> SnapshotWriter {
        SnapshotWriter {
            kind: kind.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Adds a section whose payload is produced by `fill`.
    ///
    /// # Errors
    /// Propagates errors from `fill`; rejects duplicate section names.
    pub fn section(
        &mut self,
        name: &str,
        fill: impl FnOnce(&mut Vec<u8>) -> Result<(), PersistError>,
    ) -> Result<(), PersistError> {
        if self.sections.iter().any(|(n, _)| n == name) {
            return Err(corrupt(format!("duplicate section {name:?}")));
        }
        let mut payload = Vec::new();
        fill(&mut payload)?;
        self.sections.push((name.to_owned(), payload));
        Ok(())
    }

    /// Serialises the container: header, checksummed sections, and a
    /// trailing checksum over the entire stream.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        let mut body = Vec::new();
        body.extend_from_slice(SNAPSHOT_MAGIC);
        write_u32(&mut body, SNAPSHOT_VERSION)?;
        write_string(&mut body, &self.kind)?;
        write_u32(&mut body, self.sections.len() as u32)?;
        for (name, payload) in &self.sections {
            write_string(&mut body, name)?;
            write_u64(&mut body, payload.len() as u64)?;
            body.extend_from_slice(payload);
            write_u64(&mut body, fnv1a(payload))?;
        }
        let trailer = fnv1a(&body);
        w.write_all(&body)?;
        write_u64(w, trailer)?;
        Ok(())
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a
    /// sibling `.tmp` file which is fsynced and then renamed over the
    /// final name, so a crash mid-write never corrupts an existing
    /// snapshot.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_atomic(&self, path: &Path) -> Result<(), PersistError> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp).map_err(PersistError::Io)?;
            let mut buf = io::BufWriter::new(&mut file);
            self.write_to(&mut buf)?;
            buf.flush()?;
            drop(buf);
            file.sync_all().map_err(PersistError::Io)?;
        }
        std::fs::rename(&tmp, path).map_err(PersistError::Io)?;
        Ok(())
    }
}

/// A parsed, checksum-verified snapshot.
#[derive(Debug)]
pub struct SnapshotReader {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotReader {
    /// Reads and verifies a snapshot from `r`.
    ///
    /// # Errors
    /// Returns a precise [`PersistError`] on any corruption: bad magic,
    /// unknown version, implausible lengths, a failed per-section
    /// checksum (naming the section), or a failed trailer checksum.
    pub fn read_from<R: Read>(r: &mut R) -> Result<SnapshotReader, PersistError> {
        let mut all = Vec::new();
        r.read_to_end(&mut all).map_err(PersistError::Io)?;
        if all.len() < 8 {
            return Err(corrupt("snapshot shorter than its trailer checksum"));
        }
        let (body, trailer_bytes) = all.split_at(all.len() - 8);
        let trailer = u64::from_le_bytes(trailer_bytes.try_into().expect("8 bytes"));
        let parsed = Self::parse_body(body);
        if fnv1a(body) != trailer {
            // Prefer the precise parse error (it names what is corrupt);
            // fall back to the trailer mismatch when the body still parses.
            return Err(match parsed {
                Err(e) => e,
                Ok(_) => corrupt("snapshot trailer checksum mismatch"),
            });
        }
        parsed
    }

    fn parse_body(body: &[u8]) -> Result<SnapshotReader, PersistError> {
        let mut r = body;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|_| corrupt("snapshot shorter than its magic"))?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let kind = read_string(&mut r)?;
        let count = read_u32(&mut r)?;
        if count > 4096 {
            return Err(corrupt(format!("implausible section count {count}")));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = read_string(&mut r)?;
            let len = read_u64(&mut r)?;
            if len > MAX_SECTION_BYTES {
                return Err(corrupt(format!("section {name:?} implausibly large")));
            }
            if (r.len() as u64) < len {
                return Err(corrupt(format!("section {name:?} truncated")));
            }
            let (payload, rest) = r.split_at(len as usize);
            r = rest;
            let sum = read_u64(&mut r)?;
            if fnv1a(payload) != sum {
                return Err(PersistError::ChecksumMismatch { section: name });
            }
            sections.push((name, payload.to_vec()));
        }
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes after sections",
                r.len()
            )));
        }
        Ok(SnapshotReader { kind, sections })
    }

    /// Reads and verifies a snapshot file.
    ///
    /// # Errors
    /// Propagates I/O errors and any corruption error from
    /// [`SnapshotReader::read_from`].
    pub fn read_path(path: &Path) -> Result<SnapshotReader, PersistError> {
        let mut file = std::fs::File::open(path).map_err(PersistError::Io)?;
        SnapshotReader::read_from(&mut file)
    }

    /// The snapshot's kind string.
    #[must_use]
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Fails unless the snapshot is of the expected kind.
    ///
    /// # Errors
    /// Returns [`PersistError::WrongKind`] on mismatch.
    pub fn expect_kind(&self, expected: &str) -> Result<(), PersistError> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(PersistError::WrongKind {
                expected: expected.to_owned(),
                found: self.kind.clone(),
            })
        }
    }

    /// A section's payload.
    ///
    /// # Errors
    /// Returns [`PersistError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<&[u8], PersistError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, payload)| payload.as_slice())
            .ok_or_else(|| PersistError::MissingSection {
                section: name.to_owned(),
            })
    }

    /// Decodes a section as a [`Codec`] value, requiring the payload to be
    /// fully consumed.
    ///
    /// # Errors
    /// Returns [`PersistError::MissingSection`] or any decode error.
    pub fn decode<T: Codec>(&self, name: &str) -> Result<T, PersistError> {
        T::from_bytes(self.section(name)?)
    }

    /// The section names, in write order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }
}

// ---------------------------------------------------------------------------
// Codec implementations for the parameter-carrying layers.
// ---------------------------------------------------------------------------

impl Codec for Tensor {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_u64(w, self.rows as u64)?;
        write_u64(w, self.cols as u64)?;
        // Weights plus Adam moments, so optimiser state survives a resume;
        // gradients are transient and rebuilt as zeros on load.
        write_f32_array(w, &self.data)?;
        write_f32_array(w, &self.m)?;
        write_f32_array(w, &self.v)
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let rows = read_usize(r, MAX_ELEMS, "tensor rows")?;
        let cols = read_usize(r, MAX_ELEMS, "tensor cols")?;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n as u64 <= MAX_ELEMS)
            .ok_or_else(|| corrupt("tensor too large"))?;
        let mut t = Tensor::zeros(rows, cols);
        t.data = read_f32_array(r, n)?;
        t.m = read_f32_array(r, n)?;
        t.v = read_f32_array(r, n)?;
        Ok(t)
    }
}

impl Codec for Linear {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        self.w.save(w)?;
        self.b.save(w)
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let weight = Tensor::load(r)?;
        let bias = Tensor::load(r)?;
        if bias.rows != weight.rows || bias.cols != 1 {
            return Err(corrupt("linear shape mismatch"));
        }
        Ok(Linear { w: weight, b: bias })
    }
}

impl Codec for Embedding {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        self.table.save(w)
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        Ok(Embedding {
            table: Tensor::load(r)?,
        })
    }
}

impl Codec for LstmCell {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_u64(w, self.hidden() as u64)?;
        self.wx.save(w)?;
        self.wh.save(w)?;
        self.b.save(w)
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let hidden = read_usize(r, MAX_ELEMS, "lstm hidden size")?;
        let wx = Tensor::load(r)?;
        let wh = Tensor::load(r)?;
        let b = Tensor::load(r)?;
        if wx.rows != 4 * hidden
            || wh.rows != 4 * hidden
            || wh.cols != hidden
            || b.rows != 4 * hidden
        {
            return Err(corrupt("lstm cell shape mismatch"));
        }
        LstmCell::from_parts(wx, wh, b, hidden).ok_or_else(|| corrupt("lstm cell rebuild failed"))
    }
}

impl Codec for Lstm {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_u64(w, self.cells.len() as u64)?;
        for cell in &self.cells {
            cell.save(w)?;
        }
        Ok(())
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let layers = read_usize(r, 64, "lstm layer count")?;
        if layers == 0 {
            return Err(corrupt("lstm with zero layers"));
        }
        let mut cells = Vec::with_capacity(layers);
        for _ in 0..layers {
            cells.push(LstmCell::load(r)?);
        }
        Ok(Lstm { cells })
    }
}

impl Codec for crate::lstm::LstmState {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_u64(w, self.h.len() as u64)?;
        for (h, c) in self.h.iter().zip(&self.c) {
            write_f32_vec(w, h)?;
            write_f32_vec(w, c)?;
        }
        Ok(())
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let layers = read_usize(r, 64, "lstm state layer count")?;
        let mut h = Vec::with_capacity(layers);
        let mut c = Vec::with_capacity(layers);
        for _ in 0..layers {
            h.push(read_f32_vec(r)?);
            c.push(read_f32_vec(r)?);
        }
        Ok(crate::lstm::LstmState { h, c })
    }
}

impl Codec for Adam {
    fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_f32(w, self.lr)?;
        write_f32(w, self.beta1)?;
        write_f32(w, self.beta2)?;
        write_f32(w, self.eps)?;
        match self.clip_norm {
            Some(clip) => {
                write_bool(w, true)?;
                write_f32(w, clip)?;
            }
            None => write_bool(w, false)?,
        }
        write_u64(w, self.steps())
    }

    fn load<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let mut adam = Adam::new(read_f32(r)?);
        adam.beta1 = read_f32(r)?;
        adam.beta2 = read_f32(r)?;
        adam.eps = read_f32(r)?;
        adam.clip_norm = if read_bool(r)? {
            Some(read_f32(r)?)
        } else {
            None
        };
        adam.restore_steps(read_u64(r)?);
        Ok(adam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_snapshot() -> Vec<u8> {
        let mut snap = SnapshotWriter::new("test");
        snap.section("alpha", |buf| {
            write_u64(buf, 7)?;
            write_string(buf, "hello")
        })
        .unwrap();
        snap.section("beta", |buf| write_f32_vec(buf, &[1.0, -2.5, 3.25]))
            .unwrap();
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn snapshot_round_trip() {
        let bytes = sample_snapshot();
        let snap = SnapshotReader::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(snap.kind(), "test");
        snap.expect_kind("test").unwrap();
        assert!(matches!(
            snap.expect_kind("other"),
            Err(PersistError::WrongKind { .. })
        ));
        assert_eq!(snap.section_names(), vec!["alpha", "beta"]);
        let mut alpha = snap.section("alpha").unwrap();
        assert_eq!(read_u64(&mut alpha).unwrap(), 7);
        assert_eq!(read_string(&mut alpha).unwrap(), "hello");
        let mut beta = snap.section("beta").unwrap();
        assert_eq!(read_f32_vec(&mut beta).unwrap(), vec![1.0, -2.5, 3.25]);
        assert!(matches!(
            snap.section("gamma"),
            Err(PersistError::MissingSection { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample_snapshot();
        for i in 0..bytes.len() {
            for bit in [1u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                let result =
                    SnapshotReader::read_from(&mut &bad[..]).and_then(|s| s.expect_kind("test"));
                assert!(result.is_err(), "flip at byte {i} (bit {bit:#x}) accepted");
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_snapshot();
        for len in 0..bytes.len() {
            let result = SnapshotReader::read_from(&mut &bytes[..len]);
            assert!(result.is_err(), "truncation to {len} bytes accepted");
        }
    }

    #[test]
    fn corruption_errors_are_precise() {
        let bytes = sample_snapshot();
        // Magic damage reports BadMagic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            SnapshotReader::read_from(&mut &bad[..]),
            Err(PersistError::BadMagic)
        ));
        // Version damage reports the version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            SnapshotReader::read_from(&mut &bad[..]),
            Err(PersistError::UnsupportedVersion(99))
        ));
        // Payload damage names the corrupt section.
        let alpha_payload_offset = {
            // magic(4) version(4) kind(4+4) count(4) name(4+5) len(8)
            4 + 4 + 8 + 4 + 9 + 8
        };
        let mut bad = bytes.clone();
        bad[alpha_payload_offset] ^= 0x01;
        match SnapshotReader::read_from(&mut &bad[..]) {
            Err(PersistError::ChecksumMismatch { section }) => assert_eq!(section, "alpha"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_round_trips_and_cleans_temp() {
        let dir = std::env::temp_dir().join(format!("hfl-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.hfls");
        let mut snap = SnapshotWriter::new("atomic");
        snap.section("x", |buf| write_u64(buf, 1)).unwrap();
        snap.write_atomic(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        let back = SnapshotReader::read_path(&path).unwrap();
        assert_eq!(back.kind(), "atomic");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tensor_round_trip_includes_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Tensor::xavier(7, 5, &mut rng);
        t.m[3] = 0.25;
        t.v[9] = 1.5;
        t.grad[0] = 42.0;
        let bytes = t.to_bytes().unwrap();
        let back = Tensor::from_bytes(&bytes).unwrap();
        assert_eq!(back.rows, 7);
        assert_eq!(back.cols, 5);
        assert_eq!(back.data, t.data);
        assert_eq!(back.m, t.m, "first moment persisted");
        assert_eq!(back.v, t.v, "second moment persisted");
        assert!(back.grad.iter().all(|&g| g == 0.0), "gradients transient");
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::xavier(4, 4, &mut rng);
        let bytes = t.to_bytes().unwrap();
        for len in [0, 7, bytes.len() - 3] {
            assert!(Tensor::from_bytes(&bytes[..len]).is_err());
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Tensor::from_bytes(&long).is_err());
    }

    #[test]
    fn linear_and_embedding_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new(3, 4, &mut rng);
        let back = Linear::from_bytes(&l.to_bytes().unwrap()).unwrap();
        assert_eq!(
            back.forward(&[0.1, 0.2, 0.3, 0.4]),
            l.forward(&[0.1, 0.2, 0.3, 0.4])
        );

        let e = Embedding::new(11, 6, &mut rng);
        let back = Embedding::from_bytes(&e.to_bytes().unwrap()).unwrap();
        assert_eq!(back.forward(7), e.forward(7));
    }

    #[test]
    fn lstm_round_trip_preserves_behaviour() {
        let mut rng = StdRng::seed_from_u64(4);
        let lstm = Lstm::new(5, 8, 2, &mut rng);
        let back = Lstm::from_bytes(&lstm.to_bytes().unwrap()).unwrap();
        let xs = vec![vec![0.3; 5]; 4];
        assert_eq!(back.forward_seq(&xs).outputs, lstm.forward_seq(&xs).outputs);
    }

    #[test]
    fn shape_mismatch_is_corrupt() {
        // A Linear whose bias disagrees with its weight must not load.
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = Vec::new();
        Tensor::xavier(3, 4, &mut rng).save(&mut buf).unwrap();
        Tensor::zeros(2, 1).save(&mut buf).unwrap();
        assert!(matches!(
            Linear::load(&mut &buf[..]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn adam_round_trip_preserves_schedule() {
        let mut adam = Adam::new(0.02);
        adam.clip_norm = Some(2.5);
        let mut t = Tensor::zeros(1, 2);
        for _ in 0..5 {
            t.grad = vec![1.0, -1.0];
            adam.step(&mut [&mut t]);
        }
        let back = Adam::from_bytes(&adam.to_bytes().unwrap()).unwrap();
        assert_eq!(back.steps(), 5);
        assert_eq!(back.lr, adam.lr);
        assert_eq!(back.clip_norm, adam.clip_norm);

        // A resumed optimiser applies the identical next update.
        let mut adam2 = back;
        let mut t2 = Tensor::from_bytes(&t.to_bytes().unwrap()).unwrap();
        t.grad = vec![0.5, 0.25];
        t2.grad = vec![0.5, 0.25];
        adam.step(&mut [&mut t]);
        adam2.step(&mut [&mut t2]);
        assert_eq!(t.data, t2.data, "bit-identical resumed update");
        assert_eq!(t.m, t2.m);
        assert_eq!(t.v, t2.v);
    }

    #[test]
    fn bool_codec_rejects_junk() {
        assert!(read_bool(&mut &[2u8][..]).is_err());
        assert!(!read_bool(&mut &[0u8][..]).unwrap());
        let mut buf = Vec::new();
        write_bool(&mut buf, true).unwrap();
        assert!(read_bool(&mut &buf[..]).unwrap());
    }
}
