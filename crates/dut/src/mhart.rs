//! Two-hart system DUT on the `hfl-sys` discrete-event scheduler.
//!
//! Single-hart difftest can never expose a concurrency defect: there is no
//! second agent to race against. This module builds the smallest system
//! that can — two harts executing the *same* program (SPMD, disambiguated
//! by the hart index in `x30`), a shared-memory bus that propagates each
//! committed store to the other hart, per-hart LR/SC reservations snooped
//! by that bus, and a machine-timer device that fires asynchronous
//! interrupts into the existing CSR/trap machinery.
//!
//! Interleavings are driven by [`hfl_sys::Scheduler`]: every hart step and
//! timer firing is a scheduled event, ties are broken by the scheduler's
//! seeded permutation, and per-step tick costs are themselves derived from
//! the seed — so one `sched_seed` selects one exact interleaving, making
//! the schedule both reproducible and fuzzable (the seed joins the fuzzer
//! action space as `TestBody::Mhart { sched_seed, .. }`).
//!
//! # The oracle stays sound
//!
//! The machine records the order in which hart steps and interrupt
//! deliveries *committed* (the [`CommitEvent`] schedule). The reference
//! execution then replays exactly that schedule on defect-free GRM cores
//! with immediate store propagation — a sequentially consistent execution
//! of the same serialisation, which is an architecturally legal outcome
//! (the TheHuzz argument, arXiv:2201.09941). Any per-hart trace or final
//! state divergence is therefore a real defect, not a relaxed-memory
//! artefact.

use hfl_grm::cpu::{Quirks, StepOutcome};
use hfl_grm::{cause, ArchSnapshot, Cpu, HaltReason, Program, Trace};
use hfl_sys::{mix3, ComponentId, Scheduler};

use crate::coverage::{CoverageKind, CoverageMap, CoverageSnapshot, PointId};

/// Number of harts in the system configuration.
pub const NUM_HARTS: usize = 2;

/// Scheduler component id of hart `h`.
#[must_use]
pub fn hart_component(h: usize) -> ComponentId {
    ComponentId(h as u32)
}

/// Scheduler component id of the timer device.
pub const TIMER_COMPONENT: ComponentId = ComponentId(NUM_HARTS as u32);

/// Register carrying the hart index (x30 / t5).
///
/// The CSR file models `mhartid` as a single-hart constant zero, and the
/// assembler prologue leaves x30 untouched, so the machine materialises
/// the hart index there after program load. SPMD test bodies branch on it
/// to break symmetry between the harts.
pub const HART_ID_REG: usize = 30;

/// Committed steps a remote store stays invisible under the C2 stale
/// shared-line defect.
pub const STALE_LINE_DELAY: u64 = 64;

/// One committed event of the system execution, in commit order.
///
/// This is the serialisation the reference replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitEvent {
    /// Hart `h` retired (or trapped on) one instruction.
    Step(u8),
    /// The timer delivered a machine-timer interrupt to hart `h`.
    Interrupt(u8),
}

/// Final state of one hart after a system run.
#[derive(Debug, Clone)]
pub struct HartResult {
    /// Architectural trace of this hart's own instructions, in its program
    /// order (which is also its commit order).
    pub trace: Trace,
    /// Why the hart stopped.
    pub halt: HaltReason,
    /// Final architectural state.
    pub arch: ArchSnapshot,
    /// Instructions retired (including trapped ones).
    pub steps: u64,
}

/// Result of one two-hart system execution.
#[derive(Debug, Clone)]
pub struct MhartResult {
    /// Per-hart outcome on the (possibly defect-injected) DUT.
    pub harts: Vec<HartResult>,
    /// Per-hart outcome of the defect-free sequential reference replaying
    /// the committed schedule.
    pub reference: Vec<HartResult>,
    /// The committed serialisation.
    pub schedule: Vec<CommitEvent>,
    /// Coverage hit by this case (system-level points).
    pub coverage: CoverageSnapshot,
    /// Total events the scheduler processed (steps + timer firings).
    pub scheduled_steps: u64,
}

impl MhartResult {
    /// Whether any hart's DUT execution diverged from the reference.
    ///
    /// This is the raw oracle; `hfl`'s difftest layer refines it into
    /// classified, signature-deduplicated mismatches.
    #[must_use]
    pub fn diverged(&self) -> bool {
        self.harts.iter().zip(&self.reference).any(|(d, r)| {
            d.trace.entries != r.trace.entries || d.arch != r.arch || d.halt != r.halt
        })
    }
}

/// Coverage points the machine instruments.
struct MhartPoints {
    hart_step: [PointId; NUM_HARTS],
    hart_trap: [PointId; NUM_HARTS],
    hart_halted: [PointId; NUM_HARTS],
    sc_success: [PointId; NUM_HARTS],
    sc_fail: [PointId; NUM_HARTS],
    bus_remote_store: PointId,
    bus_remote_code_store: PointId,
    bus_reservation_cleared: PointId,
    bus_stale_pending: PointId,
    timer_fired: PointId,
    timer_delivered: [PointId; NUM_HARTS],
    timer_masked: PointId,
    /// FSM over the last three committed hart choices (2^3 states).
    interleave: [PointId; 8],
}

impl MhartPoints {
    fn register(map: &mut CoverageMap) -> MhartPoints {
        fn per_hart(map: &mut CoverageMap, kind: CoverageKind, stem: &str) -> [PointId; NUM_HARTS] {
            std::array::from_fn(|h| map.register(kind, &format!("mhart:hart{h}:{stem}")))
        }
        MhartPoints {
            hart_step: per_hart(map, CoverageKind::Line, "step"),
            hart_trap: per_hart(map, CoverageKind::Line, "trap"),
            hart_halted: per_hart(map, CoverageKind::Line, "halted"),
            sc_success: per_hart(map, CoverageKind::Condition, "sc_success"),
            sc_fail: per_hart(map, CoverageKind::Condition, "sc_fail"),
            bus_remote_store: map.register(CoverageKind::Line, "mhart:bus:remote_store"),
            bus_remote_code_store: map.register(CoverageKind::Line, "mhart:bus:remote_code_store"),
            bus_reservation_cleared: map
                .register(CoverageKind::Condition, "mhart:bus:reservation_cleared"),
            bus_stale_pending: map.register(CoverageKind::Condition, "mhart:bus:stale_pending"),
            timer_fired: map.register(CoverageKind::Line, "mhart:timer:fired"),
            timer_delivered: per_hart(map, CoverageKind::Line, "timer_delivered"),
            timer_masked: map.register(CoverageKind::Condition, "mhart:timer:masked"),
            interleave: std::array::from_fn(|p| {
                map.register(CoverageKind::Fsm, &format!("mhart:interleave:{p:03b}"))
            }),
        }
    }
}

/// A remote store waiting in the bus (only delayed under C2).
#[derive(Debug, Clone, Copy)]
struct PendingStore {
    due_commit: u64,
    target: usize,
    addr: u64,
    size: u8,
    value: u64,
}

/// The two-hart system machine.
///
/// Like [`crate::Dut`], the machine is reusable across test cases: the
/// coverage map persists (ids stay stable) while each [`MhartMachine::run`]
/// starts from fresh architectural state.
///
/// # Examples
///
/// ```
/// use hfl_dut::mhart::MhartMachine;
/// use hfl_grm::cpu::Quirks;
/// use hfl_grm::Program;
/// use hfl_riscv::{Instruction, Opcode, Reg};
///
/// let mut machine = MhartMachine::new(Quirks::default());
/// let program = Program::assemble(&[Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 1)]);
/// let result = machine.run(&program, 0xFEED, 10_000);
/// assert!(!result.diverged(), "clean config must match the reference");
/// ```
#[derive(Debug, Clone)]
pub struct MhartMachine {
    quirks: Quirks,
    coverage: CoverageMap,
    points: std::sync::Arc<MhartPointsBox>,
}

/// Wrapper so `MhartMachine` can derive `Debug` without exposing the
/// point table.
struct MhartPointsBox(MhartPoints);

impl std::fmt::Debug for MhartPointsBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MhartPoints")
    }
}

impl MhartMachine {
    /// Builds a machine with the given defect injection (use
    /// [`Quirks::default`] for a clean configuration, or
    /// [`crate::bugs::quirks_for`]/[`crate::bugs::enable`] to inject
    /// catalogued defects).
    #[must_use]
    pub fn new(quirks: Quirks) -> MhartMachine {
        let mut coverage = CoverageMap::new();
        let points = MhartPoints::register(&mut coverage);
        MhartMachine {
            quirks,
            coverage,
            points: std::sync::Arc::new(MhartPointsBox(points)),
        }
    }

    /// The machine's coverage-point database.
    #[must_use]
    pub fn coverage_map(&self) -> &CoverageMap {
        &self.coverage
    }

    /// Injected quirks.
    #[must_use]
    pub fn quirks(&self) -> &Quirks {
        &self.quirks
    }

    /// Runs one SPMD program on both harts under the interleaving selected
    /// by `sched_seed`, then replays the committed schedule on a clean
    /// sequential reference.
    ///
    /// `max_steps` bounds the *total* committed hart steps across the
    /// system (the analogue of the single-hart step budget).
    pub fn run(&mut self, program: &Program, sched_seed: u64, max_steps: u64) -> MhartResult {
        let points = std::sync::Arc::clone(&self.points);
        let points = &points.0;

        // ---- DUT side: quirked harts under the event scheduler ----
        let mut cpus: Vec<Cpu> = (0..NUM_HARTS)
            .map(|h| {
                let mut cpu = Cpu::with_quirks(self.quirks.clone());
                cpu.load_program(program);
                cpu.x[HART_ID_REG] = h as u64;
                cpu
            })
            .collect();
        let mut halted: [Option<HaltReason>; NUM_HARTS] = [None; NUM_HARTS];
        let mut hart_steps = [0u64; NUM_HARTS];
        let mut schedule = Vec::new();
        let mut pending: Vec<PendingStore> = Vec::new();
        let mut interleave_window = 0usize; // last 3 hart choices, 1 bit each
        let mut committed = 0u64;

        let mut sched = Scheduler::new(sched_seed);
        for h in 0..NUM_HARTS {
            sched.schedule(hart_component(h), 0);
        }
        // Timer period and phase derive from the seed so interleaving
        // fuzzing also explores interrupt placement.
        let timer_period = 7 + mix3(sched_seed, 0x7117, 0) % 9;
        sched.schedule(TIMER_COMPONENT, timer_period);
        let mut timer_firings = 0u64;

        while let Some((_tick, id)) = sched.pop() {
            if halted.iter().all(Option::is_some) {
                break;
            }
            // Deliver bus traffic that has become visible.
            let mut i = 0;
            while i < pending.len() {
                if pending[i].due_commit <= committed {
                    let p = pending.swap_remove(i);
                    self.apply_to_hart(&mut cpus, &mut halted, p, points);
                } else {
                    i += 1;
                }
            }

            if id == TIMER_COMPONENT {
                self.coverage.hit(points.timer_fired);
                // Alternate the target hart; seed picks the phase.
                let target =
                    ((timer_firings + mix3(sched_seed, 0x4242, 0)) % NUM_HARTS as u64) as usize;
                timer_firings += 1;
                if halted[target].is_none() && cpus[target].timer_interrupt_enabled() {
                    cpus[target].take_interrupt(cause::MACHINE_TIMER_INTERRUPT);
                    schedule.push(CommitEvent::Interrupt(target as u8));
                    self.coverage.hit(points.timer_delivered[target]);
                } else {
                    self.coverage.hit(points.timer_masked);
                }
                if halted.iter().any(Option::is_none) {
                    sched.schedule(TIMER_COMPONENT, sched.now() + timer_period);
                }
                continue;
            }

            let h = id.0 as usize;
            if halted[h].is_some() {
                continue;
            }
            if committed >= max_steps {
                for (h, slot) in halted.iter_mut().enumerate() {
                    if slot.is_none() {
                        *slot = Some(HaltReason::StepBudget);
                        self.coverage.hit(points.hart_halted[h]);
                    }
                }
                break;
            }

            let info = cpus[h].step();
            match info.outcome {
                StepOutcome::Halted(reason) => {
                    halted[h] = Some(reason);
                    self.coverage.hit(points.hart_halted[h]);
                    continue;
                }
                StepOutcome::Trapped(_) => self.coverage.hit(points.hart_trap[h]),
                StepOutcome::Retired => {}
            }
            committed += 1;
            hart_steps[h] += 1;
            schedule.push(CommitEvent::Step(h as u8));
            self.coverage.hit(points.hart_step[h]);
            interleave_window = ((interleave_window << 1) | (h & 1)) & 0b111;
            if committed >= 3 {
                self.coverage.hit(points.interleave[interleave_window]);
            }

            // SC outcome coverage.
            if let (Some(inst), Some((false, rd, v))) = (info.inst, info.rd_write) {
                if matches!(inst.opcode, hfl_riscv::Opcode::ScW | hfl_riscv::Opcode::ScD) && rd != 0
                {
                    self.coverage
                        .hit_cond(v == 0, points.sc_success[h], points.sc_fail[h]);
                }
            }

            // Committed stores enter the bus towards the other hart.
            if let Some(mem) = info.mem {
                if mem.is_store {
                    let store = PendingStore {
                        due_commit: if self.quirks.stale_shared_line {
                            committed + STALE_LINE_DELAY
                        } else {
                            committed
                        },
                        target: 1 - h,
                        addr: mem.addr,
                        size: mem.size,
                        value: mem.value,
                    };
                    self.coverage.hit_cond(
                        self.quirks.stale_shared_line,
                        points.bus_stale_pending,
                        points.bus_remote_store,
                    );
                    if store.due_commit <= committed {
                        self.apply_to_hart(&mut cpus, &mut halted, store, points);
                    } else {
                        pending.push(store);
                    }
                }
            }

            sched.schedule(
                id,
                sched.now() + 1 + mix3(sched_seed, h as u64, hart_steps[h]) % 3,
            );
        }
        let scheduled_steps = sched.processed();

        let harts: Vec<HartResult> = cpus
            .iter()
            .enumerate()
            .map(|(h, cpu)| HartResult {
                trace: cpu.trace.clone(),
                halt: halted[h].unwrap_or(HaltReason::StepBudget),
                arch: cpu.arch_snapshot(),
                steps: hart_steps[h],
            })
            .collect();

        // ---- Reference: clean sequential replay of the schedule ----
        let reference = replay_reference(program, &schedule, program_halt(program));

        MhartResult {
            harts,
            reference,
            schedule,
            coverage: self.coverage.take_snapshot(),
            scheduled_steps,
        }
    }

    /// Applies one bus store to its target hart's view of memory.
    fn apply_to_hart(
        &mut self,
        cpus: &mut [Cpu],
        halted: &mut [Option<HaltReason>; NUM_HARTS],
        store: PendingStore,
        points: &MhartPoints,
    ) {
        // Even a halted hart's memory stays coherent: its final state was
        // already captured by its halt, and arch snapshots ignore memory,
        // but skipping would special-case nothing. Apply unconditionally.
        let _ = halted;
        let target = &mut cpus[store.target];
        let had_reservation = target.reservation() == Some(store.addr);
        target.apply_remote_store(store.addr, store.size, store.value);
        if had_reservation {
            self.coverage.hit_cond(
                target.reservation().is_none(),
                points.bus_reservation_cleared,
                points.bus_remote_store,
            );
        }
        if store.addr < hfl_riscv::vocab::mem_map::DATA_BASE {
            self.coverage.hit(points.bus_remote_code_store);
        }
    }
}

fn program_halt(program: &Program) -> u64 {
    program.halt_pc
}

/// Replays a committed schedule on defect-free GRM cores with immediate
/// store propagation: the sequential architectural reference.
fn replay_reference(program: &Program, schedule: &[CommitEvent], halt_pc: u64) -> Vec<HartResult> {
    let mut cpus: Vec<Cpu> = (0..NUM_HARTS)
        .map(|h| {
            let mut cpu = Cpu::new();
            cpu.load_program(program);
            cpu.x[HART_ID_REG] = h as u64;
            cpu
        })
        .collect();
    let mut halted: [Option<HaltReason>; NUM_HARTS] = [None; NUM_HARTS];
    let mut steps = [0u64; NUM_HARTS];

    for &event in schedule {
        match event {
            CommitEvent::Step(h) => {
                let h = h as usize;
                if halted[h].is_some() {
                    // The quirked DUT ran further than the clean model
                    // does; the trace-length divergence is the finding.
                    continue;
                }
                let info = cpus[h].step();
                if let StepOutcome::Halted(reason) = info.outcome {
                    halted[h] = Some(reason);
                    continue;
                }
                steps[h] += 1;
                if let Some(mem) = info.mem {
                    if mem.is_store {
                        cpus[1 - h].apply_remote_store(mem.addr, mem.size, mem.value);
                    }
                }
            }
            CommitEvent::Interrupt(h) => {
                let h = h as usize;
                if halted[h].is_none() {
                    cpus[h].take_interrupt(cause::MACHINE_TIMER_INTERRUPT);
                }
            }
        }
    }

    cpus.iter()
        .enumerate()
        .map(|(h, cpu)| {
            let halt = halted[h].unwrap_or_else(|| {
                // Mirror what one more `step()` would report without
                // executing it: budget ran out mid-program otherwise.
                if cpu.pc == halt_pc {
                    HaltReason::ReachedHaltPc
                } else if !(hfl_riscv::vocab::mem_map::CODE_BASE
                    ..hfl_riscv::vocab::mem_map::DATA_BASE)
                    .contains(&cpu.pc)
                {
                    HaltReason::OutOfCode(cpu.pc)
                } else {
                    HaltReason::StepBudget
                }
            });
            HartResult {
                trace: cpu.trace.clone(),
                halt,
                arch: cpu.arch_snapshot(),
                steps: steps[h],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl_riscv::{Instruction, Opcode, Reg};

    /// Both harts increment a private counter; no sharing, no races.
    fn independent_body() -> Vec<Instruction> {
        vec![
            Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 1),
            Instruction::i(Opcode::Addi, Reg::X10, Reg::X10, 1),
            Instruction::i(Opcode::Addi, Reg::X10, Reg::X10, 1),
        ]
    }

    /// Hart 0 stores a flag; hart 1 spins... kept bounded: both harts
    /// touch the same shared word without synchronisation.
    fn shared_store_body() -> Vec<Instruction> {
        vec![
            // x5 = DATA_BASE; both harts store their hart id + 1.
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X30, 1),
            Instruction::s(Opcode::Sd, Reg::X11, 0, Reg::X5),
            Instruction::i(Opcode::Ld, Reg::X12, Reg::X5, 0),
        ]
    }

    #[test]
    fn clean_config_matches_reference() {
        let mut machine = MhartMachine::new(Quirks::default());
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let program = Program::assemble(&shared_store_body());
            let result = machine.run(&program, seed, 10_000);
            assert!(
                !result.diverged(),
                "clean config diverged at seed {seed:#x}"
            );
            assert_eq!(result.harts.len(), NUM_HARTS);
            for hart in &result.harts {
                assert_eq!(hart.halt, HaltReason::ReachedHaltPc);
            }
        }
    }

    #[test]
    fn same_seed_reproduces_the_exact_schedule() {
        let program = Program::assemble(&shared_store_body());
        let mut machine = MhartMachine::new(Quirks::default());
        let a = machine.run(&program, 42, 10_000);
        let b = machine.run(&program, 42, 10_000);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.scheduled_steps, b.scheduled_steps);
        for (x, y) in a.harts.iter().zip(&b.harts) {
            assert_eq!(x.trace.entries, y.trace.entries);
            assert_eq!(x.arch, y.arch);
        }
    }

    #[test]
    fn different_seeds_reach_different_interleavings() {
        let program = Program::assemble(&independent_body());
        let mut machine = MhartMachine::new(Quirks::default());
        let schedules: Vec<Vec<CommitEvent>> = (0..16)
            .map(|seed| machine.run(&program, seed, 10_000).schedule)
            .collect();
        let distinct: std::collections::HashSet<_> = schedules.iter().collect();
        assert!(
            distinct.len() > 1,
            "16 seeds produced a single interleaving"
        );
    }

    #[test]
    fn hart_id_register_differs_per_hart() {
        let body = vec![Instruction::i(Opcode::Addi, Reg::X10, Reg::X30, 0)];
        let program = Program::assemble(&body);
        let mut machine = MhartMachine::new(Quirks::default());
        let result = machine.run(&program, 7, 1_000);
        assert_eq!(result.harts[0].arch.x[10], 0);
        assert_eq!(result.harts[1].arch.x[10], 1);
    }

    #[test]
    fn c1_reservation_race_diverges_under_some_seed() {
        // Hart 0: lr / sc on the shared word. Hart 1: plain store to it.
        // Under C1 the DUT's reservation survives the remote store, so an
        // interleaving with the store inside the lr/sc window makes the
        // DUT's sc succeed where the reference's fails.
        let body = vec![
            Instruction::r(Opcode::LrD, Reg::X10, Reg::X5, Reg::X0),
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X0, 55),
            Instruction::NOP,
            Instruction::NOP,
            Instruction::NOP,
            Instruction::r(Opcode::ScD, Reg::X12, Reg::X5, Reg::X11),
            // Hart 1 only: overwrite the reserved word mid-window.
            // (Both harts run everything; the store is what races.)
            Instruction::s(Opcode::Sd, Reg::X30, 0, Reg::X5),
        ];
        let program = Program::assemble(&body);
        let mut quirks = Quirks::default();
        crate::bugs::enable(&mut quirks, "C1", crate::CoreKind::Rocket);
        let mut machine = MhartMachine::new(quirks);
        let diverged = (0..64).any(|seed| machine.run(&program, seed, 10_000).diverged());
        assert!(diverged, "no seed exposed the C1 reservation race");
    }

    #[test]
    fn c2_stale_line_diverges_under_some_seed() {
        let program = Program::assemble(&shared_store_body());
        let mut quirks = Quirks::default();
        crate::bugs::enable(&mut quirks, "C2", crate::CoreKind::Rocket);
        let mut machine = MhartMachine::new(quirks);
        let diverged = (0..64).any(|seed| machine.run(&program, seed, 10_000).diverged());
        assert!(diverged, "no seed exposed the C2 stale shared line");
    }

    #[test]
    fn coverage_map_has_system_points() {
        let machine = MhartMachine::new(Quirks::default());
        let map = machine.coverage_map();
        assert!(map.find("mhart:bus:remote_store").is_some());
        assert!(map.find("mhart:timer:fired").is_some());
        assert!(map.find("mhart:interleave:000").is_some());
        assert!(map.len() >= 20);
    }

    #[test]
    fn committed_budget_bounds_the_run() {
        // An infinite loop on both harts: jal x0, 0 (self-jump).
        let body = vec![Instruction::j(Opcode::Jal, Reg::X0, 0)];
        let program = Program::assemble(&body);
        let mut machine = MhartMachine::new(Quirks::default());
        let result = machine.run(&program, 3, 200);
        assert!(result
            .harts
            .iter()
            .all(|h| h.halt == HaltReason::StepBudget));
        let total: u64 = result.harts.iter().map(|h| h.steps).sum();
        assert!(total <= 200 + NUM_HARTS as u64);
    }
}
