//! Coverage instrumentation: line, condition and FSM coverage points.
//!
//! This module plays the role of an RTL simulator's coverage database
//! (Synopsys VCS coverage metrics in the paper, §III/§VI). Core models
//! register named points at construction; execution calls
//! [`CoverageMap::hit`]; a [`CoverageSnapshot`] captures which points a
//! single test case reached, and snapshots union into cumulative coverage.

use std::collections::HashMap;

/// The three coverage metrics the paper evaluates (§IV-C, §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageKind {
    /// Line coverage: a statement/event in the model executed.
    Line,
    /// Condition coverage: a boolean predicate evaluated to a polarity.
    Condition,
    /// FSM coverage: a state machine visited a state.
    Fsm,
}

impl CoverageKind {
    /// All metrics, in display order.
    pub const ALL: [CoverageKind; 3] = [
        CoverageKind::Condition,
        CoverageKind::Line,
        CoverageKind::Fsm,
    ];

    /// Human-readable metric name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoverageKind::Line => "line",
            CoverageKind::Condition => "condition",
            CoverageKind::Fsm => "fsm",
        }
    }
}

impl std::fmt::Display for CoverageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a registered coverage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub(crate) u32);

impl PointId {
    /// Builds a point id from a raw snapshot index. The caller must ensure
    /// the index is within the registering map's range.
    #[must_use]
    pub fn from_index(index: usize) -> PointId {
        PointId(u32::try_from(index).expect("point index fits u32"))
    }

    /// The point's index into snapshot bit vectors.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one registered point.
#[derive(Debug, Clone)]
struct PointInfo {
    name: String,
    kind: CoverageKind,
}

/// The coverage-point database plus the per-test hit state.
///
/// # Examples
///
/// ```
/// use hfl_dut::coverage::{CoverageKind, CoverageMap};
///
/// let mut map = CoverageMap::new();
/// let p = map.register(CoverageKind::Line, "execute:alu");
/// map.hit(p);
/// let snap = map.take_snapshot();
/// assert!(snap.is_hit(p));
/// assert_eq!(snap.count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    points: Vec<PointInfo>,
    by_name: HashMap<String, PointId>,
    hits: Vec<bool>,
}

impl CoverageMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Registers a coverage point; re-registering a name returns the
    /// existing id.
    pub fn register(&mut self, kind: CoverageKind, name: &str) -> PointId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = PointId(u32::try_from(self.points.len()).expect("point count fits u32"));
        self.points.push(PointInfo {
            name: name.to_owned(),
            kind,
        });
        self.by_name.insert(name.to_owned(), id);
        self.hits.push(false);
        id
    }

    /// Marks a point as hit for the current test case.
    pub fn hit(&mut self, id: PointId) {
        self.hits[id.index()] = true;
    }

    /// Marks a point hit when `condition` holds; otherwise marks `other`.
    ///
    /// Convenience for two-polarity condition points.
    pub fn hit_cond(&mut self, condition: bool, if_true: PointId, if_false: PointId) {
        self.hit(if condition { if_true } else { if_false });
    }

    /// Total number of registered points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the map has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points of one metric.
    #[must_use]
    pub fn len_of(&self, kind: CoverageKind) -> usize {
        self.points.iter().filter(|p| p.kind == kind).count()
    }

    /// The name of a point.
    #[must_use]
    pub fn name(&self, id: PointId) -> &str {
        &self.points[id.index()].name
    }

    /// The metric a point belongs to.
    #[must_use]
    pub fn kind(&self, id: PointId) -> CoverageKind {
        self.points[id.index()].kind
    }

    /// Looks a point up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<PointId> {
        self.by_name.get(name).copied()
    }

    /// Every point id of one metric, in registration order.
    #[must_use]
    pub fn ids_of(&self, kind: CoverageKind) -> Vec<PointId> {
        (0..self.points.len())
            .filter(|&i| self.points[i].kind == kind)
            .map(|i| PointId(i as u32))
            .collect()
    }

    /// Captures the current hit set and clears it for the next test case.
    pub fn take_snapshot(&mut self) -> CoverageSnapshot {
        let mut snap = CoverageSnapshot::empty(self.points.len());
        for (i, hit) in self.hits.iter_mut().enumerate() {
            if *hit {
                snap.set(PointId(i as u32));
                *hit = false;
            }
        }
        snap
    }

    /// Clears the hit set without taking a snapshot.
    pub fn clear_hits(&mut self) {
        self.hits.iter_mut().for_each(|h| *h = false);
    }
}

/// An immutable bit set of coverage points hit by one or more test cases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoverageSnapshot {
    bits: Vec<u64>,
    len: usize,
}

impl CoverageSnapshot {
    /// An all-zero snapshot sized for `len` points.
    #[must_use]
    pub fn empty(len: usize) -> CoverageSnapshot {
        CoverageSnapshot {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of points the snapshot covers (hit or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshot tracks zero points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set(&mut self, id: PointId) {
        self.bits[id.index() / 64] |= 1 << (id.index() % 64);
    }

    /// Whether a point is hit.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this snapshot.
    #[must_use]
    pub fn is_hit(&self, id: PointId) -> bool {
        self.bits[id.index() / 64] & (1 << (id.index() % 64)) != 0
    }

    /// Number of hit points.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of hit points of one metric (needs the registering map).
    #[must_use]
    pub fn count_of(&self, map: &CoverageMap, kind: CoverageKind) -> usize {
        map.ids_of(kind)
            .into_iter()
            .filter(|&id| self.is_hit(id))
            .count()
    }

    /// Unions another snapshot into this one.
    ///
    /// # Panics
    /// Panics if the two snapshots track different point counts.
    pub fn union_with(&mut self, other: &CoverageSnapshot) {
        assert_eq!(self.len, other.len, "snapshot size mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Whether `other` hits any point this snapshot does not.
    #[must_use]
    pub fn would_grow(&self, other: &CoverageSnapshot) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| b & !a != 0)
    }

    /// Unions a raw bitmap row into this snapshot and returns the number
    /// of newly-set bits — one fused pass over the words, equivalent to
    /// `would_grow` + `union_with` + two `count()` calls. This is the
    /// accumulation primitive for the batched (structure-of-arrays)
    /// per-round coverage merge.
    ///
    /// # Panics
    /// Panics if `row` has a different word count than this snapshot.
    pub fn union_counting(&mut self, row: &[u64]) -> usize {
        assert_eq!(self.bits.len(), row.len(), "snapshot size mismatch");
        let mut newly = 0usize;
        for (a, b) in self.bits.iter_mut().zip(row) {
            newly += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        newly
    }

    /// Iterates over hit point ids.
    pub fn iter_hits(&self) -> impl Iterator<Item = PointId> + '_ {
        (0..self.len)
            .map(|i| PointId(i as u32))
            .filter(|&id| self.is_hit(id))
    }

    /// The hit bits as a `0`/`1` vector, one entry per point — the bit-string
    /// labels the paper's coverage predictor trains on (§IV-C).
    #[must_use]
    pub fn to_bit_labels(&self) -> Vec<u8> {
        (0..self.len)
            .map(|i| u8::from(self.is_hit(PointId(i as u32))))
            .collect()
    }

    /// The raw 64-bit backing words, for checkpointing.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a snapshot from backing words captured by
    /// [`CoverageSnapshot::words`]. Returns `None` if the word count does
    /// not match `len` or a bit beyond `len` is set.
    #[must_use]
    pub fn from_words(len: usize, words: Vec<u64>) -> Option<CoverageSnapshot> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        Some(CoverageSnapshot { bits: words, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_hit_snapshot_cycle() {
        let mut map = CoverageMap::new();
        let a = map.register(CoverageKind::Line, "a");
        let b = map.register(CoverageKind::Condition, "b");
        let c = map.register(CoverageKind::Fsm, "c");
        assert_eq!(map.len(), 3);
        map.hit(a);
        map.hit(c);
        let snap = map.take_snapshot();
        assert!(snap.is_hit(a) && snap.is_hit(c) && !snap.is_hit(b));
        // Snapshot cleared the per-test state.
        let snap2 = map.take_snapshot();
        assert_eq!(snap2.count(), 0);
    }

    #[test]
    fn duplicate_registration_returns_same_id() {
        let mut map = CoverageMap::new();
        let a = map.register(CoverageKind::Line, "x");
        let b = map.register(CoverageKind::Line, "x");
        assert_eq!(a, b);
        assert_eq!(map.len(), 1);
        assert_eq!(map.find("x"), Some(a));
        assert_eq!(map.find("y"), None);
    }

    #[test]
    fn per_kind_accounting() {
        let mut map = CoverageMap::new();
        for i in 0..5 {
            map.register(CoverageKind::Line, &format!("l{i}"));
        }
        for i in 0..3 {
            map.register(CoverageKind::Fsm, &format!("f{i}"));
        }
        assert_eq!(map.len_of(CoverageKind::Line), 5);
        assert_eq!(map.len_of(CoverageKind::Fsm), 3);
        assert_eq!(map.len_of(CoverageKind::Condition), 0);
        let ids = map.ids_of(CoverageKind::Fsm);
        assert_eq!(ids.len(), 3);
        map.hit(ids[1]);
        let snap = map.take_snapshot();
        assert_eq!(snap.count_of(&map, CoverageKind::Fsm), 1);
        assert_eq!(snap.count_of(&map, CoverageKind::Line), 0);
    }

    #[test]
    fn union_and_growth() {
        let mut map = CoverageMap::new();
        let a = map.register(CoverageKind::Line, "a");
        let b = map.register(CoverageKind::Line, "b");
        map.hit(a);
        let s1 = map.take_snapshot();
        map.hit(b);
        let s2 = map.take_snapshot();
        assert!(s1.would_grow(&s2));
        let mut acc = s1.clone();
        acc.union_with(&s2);
        assert_eq!(acc.count(), 2);
        assert!(!acc.would_grow(&s2));
        assert_eq!(acc.iter_hits().count(), 2);
    }

    #[test]
    fn bit_labels_match_hits() {
        let mut map = CoverageMap::new();
        let _a = map.register(CoverageKind::Line, "a");
        let b = map.register(CoverageKind::Line, "b");
        map.hit(b);
        let snap = map.take_snapshot();
        assert_eq!(snap.to_bit_labels(), vec![0, 1]);
    }

    #[test]
    fn hit_cond_polarity() {
        let mut map = CoverageMap::new();
        let t = map.register(CoverageKind::Condition, "p:true");
        let f = map.register(CoverageKind::Condition, "p:false");
        map.hit_cond(true, t, f);
        let snap = map.take_snapshot();
        assert!(snap.is_hit(t) && !snap.is_hit(f));
    }

    #[test]
    fn large_map_crosses_word_boundaries() {
        let mut map = CoverageMap::new();
        let ids: Vec<_> = (0..200)
            .map(|i| map.register(CoverageKind::Line, &format!("p{i}")))
            .collect();
        map.hit(ids[0]);
        map.hit(ids[63]);
        map.hit(ids[64]);
        map.hit(ids[199]);
        let snap = map.take_snapshot();
        assert_eq!(snap.count(), 4);
        assert!(snap.is_hit(ids[64]) && snap.is_hit(ids[199]));
    }

    // Property tests for the union algebra the fleet's coverage merging
    // relies on: unioning member bitmaps must behave as a set union no
    // matter the member order, grouping or repetition, and must never
    // lose points. Snapshots span word boundaries (len > 64) so the
    // partial last word is exercised too.

    use proptest::prelude::*;

    /// A snapshot over `len` points whose hit words are `words` with any
    /// out-of-range bits masked off.
    fn snapshot(len: usize, words: [u64; 2]) -> CoverageSnapshot {
        let mut bits: Vec<u64> = words[..len.div_ceil(64)].to_vec();
        if !len.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        CoverageSnapshot::from_words(len, bits).expect("masked words fit")
    }

    fn union(a: &CoverageSnapshot, b: &CoverageSnapshot) -> CoverageSnapshot {
        let mut out = a.clone();
        out.union_with(b);
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn union_is_commutative(
            len in 1usize..=100,
            a0 in any::<u64>(), a1 in any::<u64>(),
            b0 in any::<u64>(), b1 in any::<u64>(),
        ) {
            let a = snapshot(len, [a0, a1]);
            let b = snapshot(len, [b0, b1]);
            prop_assert_eq!(union(&a, &b), union(&b, &a));
        }

        #[test]
        fn union_is_associative(
            len in 1usize..=100,
            a0 in any::<u64>(), a1 in any::<u64>(),
            b0 in any::<u64>(), b1 in any::<u64>(),
            c0 in any::<u64>(), c1 in any::<u64>(),
        ) {
            let a = snapshot(len, [a0, a1]);
            let b = snapshot(len, [b0, b1]);
            let c = snapshot(len, [c0, c1]);
            prop_assert_eq!(union(&union(&a, &b), &c), union(&a, &union(&b, &c)));
        }

        #[test]
        fn union_is_idempotent_with_empty_identity(
            len in 1usize..=100,
            a0 in any::<u64>(), a1 in any::<u64>(),
        ) {
            let a = snapshot(len, [a0, a1]);
            prop_assert_eq!(union(&a, &a), a.clone());
            prop_assert_eq!(union(&a, &CoverageSnapshot::empty(len)), a);
        }

        #[test]
        fn union_is_monotone(
            len in 1usize..=100,
            a0 in any::<u64>(), a1 in any::<u64>(),
            b0 in any::<u64>(), b1 in any::<u64>(),
        ) {
            let a = snapshot(len, [a0, a1]);
            let b = snapshot(len, [b0, b1]);
            let u = union(&a, &b);
            // The union dominates both operands: every hit point stays hit.
            prop_assert!(u.count() >= a.count().max(b.count()));
            prop_assert!(!u.would_grow(&a) && !u.would_grow(&b));
            for id in a.iter_hits() {
                prop_assert!(u.is_hit(id));
            }
            // And it invents nothing: every union hit came from an operand.
            for id in u.iter_hits() {
                prop_assert!(a.is_hit(id) || b.is_hit(id));
            }
            // `would_grow` agrees with the union's count.
            prop_assert_eq!(a.would_grow(&b), u.count() > a.count());
        }

        #[test]
        fn union_counting_equals_the_three_pass_computation(
            len in 1usize..=100,
            a0 in any::<u64>(), a1 in any::<u64>(),
            b0 in any::<u64>(), b1 in any::<u64>(),
        ) {
            let a = snapshot(len, [a0, a1]);
            let b = snapshot(len, [b0, b1]);
            // Reference: the legacy would_grow/union_with/count sequence.
            let before = a.count();
            let gained = a.would_grow(&b);
            let reference = union(&a, &b);
            let gained_bits = reference.count() - before;
            // Fused: one pass over the raw row.
            let mut fused = a.clone();
            let newly = fused.union_counting(b.words());
            prop_assert_eq!(&fused, &reference);
            prop_assert_eq!(newly, gained_bits);
            prop_assert_eq!(newly > 0, gained);
        }
    }
}
