//! Set-associative cache models with write-back FSMs.
//!
//! Each access returns a [`CacheEvent`] describing the path the cache
//! controller took; the core model maps events to coverage points. The
//! write-back FSM is the micro-architectural mechanism behind the paper's
//! V1 vulnerability (cache-coherency violation on a store into the
//! currently-executing line).

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// Tag match; data served immediately.
    Hit,
    /// Miss into an empty way: plain refill, no victim.
    MissCold,
    /// Miss evicting a clean line (set conflict).
    MissEvictClean,
    /// Miss evicting a dirty line: write-back then refill.
    MissWriteBack,
}

impl CacheEvent {
    /// Extra cycles this event costs over a hit.
    #[must_use]
    pub fn penalty(self) -> u64 {
        match self {
            CacheEvent::Hit => 0,
            CacheEvent::MissCold => 10,
            CacheEvent::MissEvictClean => 12,
            CacheEvent::MissWriteBack => 18,
        }
    }

    /// Whether the access missed.
    #[must_use]
    pub fn is_miss(self) -> bool {
        self != CacheEvent::Hit
    }

    /// Whether the miss displaced a resident line (set conflict).
    #[must_use]
    pub fn evicted(self) -> bool {
        matches!(self, CacheEvent::MissEvictClean | CacheEvent::MissWriteBack)
    }
}

/// A set-associative, write-back, write-allocate cache model.
///
/// Only tags are modelled (data lives in the functional memory); that is
/// all the coverage and timing models need.
///
/// # Examples
///
/// ```
/// use hfl_dut::cache::{Cache, CacheEvent};
///
/// let mut dcache = Cache::new(64, 4, 64);
/// assert_eq!(dcache.access(0x8000_1000, false), CacheEvent::MissCold);
/// assert_eq!(dcache.access(0x8000_1008, false), CacheEvent::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line: u64,
    /// `tags[set][way]`: the cached line address (addr / line).
    tags: Vec<Vec<Option<u64>>>,
    dirty: Vec<Vec<bool>>,
    /// Round-robin replacement pointers (deterministic).
    next_victim: Vec<usize>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets, `ways` ways and `line`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `line` are powers of two and `ways >= 1`.
    #[must_use]
    pub fn new(sets: usize, ways: usize, line: u64) -> Cache {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1, "at least one way");
        Cache {
            sets,
            ways,
            line,
            tags: vec![vec![None; ways]; sets],
            dirty: vec![vec![false; ways]; sets],
            next_victim: vec![0; sets],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> u64 {
        self.line
    }

    /// The line address (`addr / line_size`) of a byte address.
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr as usize) & (self.sets - 1)
    }

    /// Performs an access; `is_store` marks the line dirty on completion.
    pub fn access(&mut self, addr: u64, is_store: bool) -> CacheEvent {
        let line_addr = self.line_of(addr);
        let set = self.set_of(line_addr);
        // Lookup.
        if let Some(way) = self.tags[set].iter().position(|&t| t == Some(line_addr)) {
            self.hits += 1;
            if is_store {
                self.dirty[set][way] = true;
            }
            return CacheEvent::Hit;
        }
        self.misses += 1;
        // Prefer an empty way; otherwise evict round-robin.
        let empty = self.tags[set].iter().position(Option::is_none);
        let way = empty.unwrap_or_else(|| {
            let v = self.next_victim[set];
            self.next_victim[set] = (v + 1) % self.ways;
            v
        });
        let had_victim = self.tags[set][way].is_some();
        let evicted_dirty = had_victim && self.dirty[set][way];
        self.tags[set][way] = Some(line_addr);
        self.dirty[set][way] = is_store;
        if evicted_dirty {
            self.writebacks += 1;
            CacheEvent::MissWriteBack
        } else if had_victim {
            CacheEvent::MissEvictClean
        } else {
            CacheEvent::MissCold
        }
    }

    /// Whether the line containing `addr` is resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = self.line_of(addr);
        let set = self.set_of(line_addr);
        self.tags[set].contains(&Some(line_addr))
    }

    /// Invalidates the line containing `addr`, returning whether it was
    /// resident (the I-cache snoop path used by the V1 mechanism).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line_addr = self.line_of(addr);
        let set = self.set_of(line_addr);
        match self.tags[set].iter().position(|&t| t == Some(line_addr)) {
            Some(way) => {
                self.tags[set][way] = None;
                self.dirty[set][way] = false;
                true
            }
            None => false,
        }
    }

    /// Flushes the whole cache (e.g. on `fence.i`), returning the number of
    /// dirty lines written back.
    pub fn flush(&mut self) -> usize {
        let mut wb = 0;
        for set in 0..self.sets {
            for way in 0..self.ways {
                if self.tags[set][way].is_some() && self.dirty[set][way] {
                    wb += 1;
                }
                self.tags[set][way] = None;
                self.dirty[set][way] = false;
            }
        }
        self.writebacks += wb as u64;
        wb
    }

    /// Lifetime statistics: `(hits, misses, writebacks)`.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }

    /// Returns the cache to its power-on state without reallocating, so a
    /// long-lived DUT can be reused across test cases.
    pub fn reset(&mut self) {
        for set in &mut self.tags {
            set.fill(None);
        }
        for set in &mut self.dirty {
            set.fill(false);
        }
        self.next_victim.fill(0);
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_refill() {
        let mut c = Cache::new(16, 2, 64);
        assert_eq!(c.access(0x1000, false), CacheEvent::MissCold);
        assert_eq!(c.access(0x1004, false), CacheEvent::Hit);
        assert_eq!(c.access(0x103F, false), CacheEvent::Hit);
        assert_eq!(c.access(0x1040, false), CacheEvent::MissCold, "next line");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        // Direct-mapped, 1 set: every distinct line conflicts.
        let mut c = Cache::new(1, 1, 64);
        assert_eq!(c.access(0x0, true), CacheEvent::MissCold);
        assert_eq!(c.access(0x40, false), CacheEvent::MissWriteBack);
        assert_eq!(
            c.access(0x80, false),
            CacheEvent::MissEvictClean,
            "clean victim"
        );
        let (_, _, wb) = c.stats();
        assert_eq!(wb, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = Cache::new(1, 1, 64);
        c.access(0x0, false);
        c.access(0x8, true); // hit, marks dirty
        assert_eq!(c.access(0x40, false), CacheEvent::MissWriteBack);
    }

    #[test]
    fn associativity_avoids_conflicts() {
        let mut c = Cache::new(1, 2, 64);
        c.access(0x0, false);
        c.access(0x40, false);
        assert_eq!(c.access(0x0, false), CacheEvent::Hit);
        assert_eq!(c.access(0x40, false), CacheEvent::Hit);
        // Third line evicts round-robin.
        assert_eq!(c.access(0x80, false), CacheEvent::MissEvictClean);
        assert!(c.contains(0x80));
    }

    #[test]
    fn invalidate_and_contains() {
        let mut c = Cache::new(16, 2, 64);
        c.access(0x2000, false);
        assert!(c.contains(0x2010));
        assert!(c.invalidate(0x2000));
        assert!(!c.contains(0x2000));
        assert!(!c.invalidate(0x2000), "already gone");
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = Cache::new(16, 2, 64);
        c.access(0x0, true); // set 0
        c.access(0x1040, true); // set 1
        c.access(0x2080, false); // set 2, clean
        assert_eq!(c.flush(), 2);
        assert!(!c.contains(0x0));
        assert_eq!(c.access(0x0, false), CacheEvent::MissCold);
    }

    #[test]
    fn deterministic_replacement() {
        let run = || {
            let mut c = Cache::new(4, 2, 64);
            let mut events = Vec::new();
            for i in 0..64u64 {
                events.push(c.access((i * 0x140) % 0x2000, i % 3 == 0));
            }
            events
        };
        assert_eq!(run(), run());
    }
}
