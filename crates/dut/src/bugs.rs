//! The injected-defect catalogue: the paper's four novel CVA6
//! vulnerabilities (V1–V4, §VII) plus the previously-known bugs the paper
//! says HFL re-detects on all three cores (§I, contribution 4).
//!
//! Each catalogue entry maps to a [`Quirks`] flag in the golden-model
//! executor; [`quirks_for`] assembles the per-core defect configuration the
//! DUT runs with.

use hfl_grm::cpu::Quirks;

use crate::CoreKind;

/// One injected hardware defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedBug {
    /// Short identifier (`"V1"`–`"V4"` for the paper's novel findings,
    /// `"K1"`… for previously-known bugs).
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// The CWE class the paper assigns (novel bugs) or the closest match.
    pub cwe: &'static str,
    /// Cores carrying the defect.
    pub cores: &'static [CoreKind],
    /// Whether the paper reports this as a novel discovery.
    pub novel: bool,
    /// Whether the defect only manifests under multi-hart execution
    /// (detected by the [`crate::mhart`] system configuration, invisible
    /// to single-hart difftest).
    pub concurrency: bool,
    /// What goes wrong.
    pub description: &'static str,
}

/// The full defect catalogue.
pub const CATALOG: &[InjectedBug] = &[
    InjectedBug {
        id: "V1",
        name: "cache-line self-modification crash",
        cwe: "CWE-1281",
        cores: &[CoreKind::Cva6],
        novel: true,
        concurrency: false,
        description: "a store targeting the cache line holding the currently \
                      executing instruction disrupts write-back coherency and \
                      crashes the core (denial of service)",
    },
    InjectedBug {
        id: "V2",
        name: "delayed PMP enforcement",
        cwe: "CWE-1220",
        cores: &[CoreKind::Cva6],
        novel: true,
        concurrency: false,
        description: "after configuring a locked PMP rule, the first 128 bits \
                      (16 bytes) of the protected region remain accessible",
    },
    InjectedBug {
        id: "V3",
        name: "misaligned jump misses exception",
        cwe: "CWE-1281",
        cores: &[CoreKind::Cva6],
        novel: true,
        concurrency: false,
        description: "jumps to misaligned addresses do not raise the \
                      misaligned-fetch exception; execution silently continues \
                      at a truncated target",
    },
    InjectedBug {
        id: "V4",
        name: "FEQ.S NaN-boxing NV flag missing",
        cwe: "CWE-1281",
        cores: &[CoreKind::Cva6],
        novel: true,
        concurrency: false,
        description: "feq.s with an improperly NaN-boxed input fails to set \
                      the invalid-operation flag for signalling NaNs",
    },
    InjectedBug {
        id: "K1",
        name: "fdiv divide-by-zero flag missing",
        cwe: "CWE-1281",
        cores: &[CoreKind::Rocket],
        novel: false,
        concurrency: false,
        description: "floating-point division by zero does not raise the DZ \
                      exception flag",
    },
    InjectedBug {
        id: "K2",
        name: "sc ignores reservation",
        cwe: "CWE-1281",
        cores: &[CoreKind::Rocket],
        novel: false,
        concurrency: false,
        description: "store-conditional succeeds without a valid load \
                      reservation, breaking atomic sequences",
    },
    InjectedBug {
        id: "K3",
        name: "unimplemented CSR accesses silently succeed",
        cwe: "CWE-1281",
        cores: &[CoreKind::Rocket],
        novel: false,
        concurrency: false,
        description: "accesses to unimplemented CSRs complete as no-ops \
                      instead of raising an illegal-instruction exception",
    },
    InjectedBug {
        id: "K4",
        name: "fmin/fmax NaN propagation wrong",
        cwe: "CWE-1281",
        cores: &[CoreKind::Boom],
        novel: false,
        concurrency: false,
        description: "fmin/fmax with exactly one NaN operand return NaN \
                      instead of the other operand",
    },
    InjectedBug {
        id: "K5",
        name: "mulhsu sign handling wrong",
        cwe: "CWE-1281",
        cores: &[CoreKind::Boom],
        novel: false,
        concurrency: false,
        description: "mulhsu treats its unsigned operand as signed, \
                      corrupting the upper product word",
    },
    InjectedBug {
        id: "K6",
        name: "minstret double-counts divides",
        cwe: "CWE-1281",
        cores: &[CoreKind::Boom],
        novel: false,
        concurrency: false,
        description: "the retired-instruction counter advances twice for \
                      integer divide instructions",
    },
    InjectedBug {
        id: "K7",
        name: "mtval cleared on misaligned store",
        cwe: "CWE-1281",
        cores: &[CoreKind::Cva6],
        novel: false,
        concurrency: false,
        description: "misaligned-store traps report mtval = 0 instead of the \
                      faulting address",
    },
    InjectedBug {
        id: "K8",
        name: "read-only CSR writes silently ignored",
        cwe: "CWE-1281",
        cores: &[CoreKind::Cva6],
        novel: false,
        concurrency: false,
        description: "writes to read-only CSRs are dropped instead of raising \
                      an illegal-instruction exception",
    },
    InjectedBug {
        id: "C1",
        name: "LR reservation survives remote store",
        cwe: "CWE-1281",
        cores: &[CoreKind::Rocket, CoreKind::Boom, CoreKind::Cva6],
        novel: false,
        concurrency: true,
        description: "a load-reserved reservation is not invalidated when \
                      another hart stores to the reserved address, so a racing \
                      store-conditional succeeds and breaks the atomic sequence",
    },
    InjectedBug {
        id: "C2",
        name: "stale shared cache line",
        cwe: "CWE-1281",
        cores: &[CoreKind::Rocket, CoreKind::Boom, CoreKind::Cva6],
        novel: false,
        concurrency: true,
        description: "remote stores become visible to the other hart only \
                      after a long delay (a coherence miss keeps serving the \
                      stale line), so cross-hart reads return old data",
    },
    InjectedBug {
        id: "C3",
        name: "interrupt saves mepc of the next instruction",
        cwe: "CWE-1281",
        cores: &[CoreKind::Rocket, CoreKind::Boom, CoreKind::Cva6],
        novel: false,
        concurrency: true,
        description: "an asynchronous interrupt latches mepc = pc + 4 instead \
                      of pc, so returning from the handler silently skips the \
                      interrupted instruction",
    },
];

/// Looks up a catalogue entry by id.
#[must_use]
pub fn find(id: &str) -> Option<&'static InjectedBug> {
    CATALOG.iter().find(|b| b.id == id)
}

/// All bugs injected into one core.
#[must_use]
pub fn bugs_for(core: CoreKind) -> Vec<&'static InjectedBug> {
    CATALOG.iter().filter(|b| b.cores.contains(&core)).collect()
}

/// The architectural quirk configuration for one core (all of its injected
/// defects enabled).
#[must_use]
pub fn quirks_for(core: CoreKind) -> Quirks {
    let mut q = Quirks::default();
    for bug in bugs_for(core) {
        enable(&mut q, bug.id, core);
    }
    q
}

/// Enables a single catalogue defect on a quirk set (used by the ablation
/// and per-bug detection experiments).
pub fn enable(q: &mut Quirks, id: &str, core: CoreKind) {
    match id {
        "V1" => q.crash_on_store_to_fetch_line = Some(icache_line_size(core)),
        "V2" => q.pmp_grace_window = true,
        "V3" => q.skip_misaligned_jump_check = true,
        "V4" => q.feq_nv_flag_missing_on_unboxed = true,
        "K1" => q.fdiv_dz_flag_missing = true,
        "K2" => q.sc_ignores_reservation = true,
        "K3" => q.unimplemented_csr_nop = true,
        "K4" => q.fmin_nan_propagation_wrong = true,
        "K5" => q.mulhsu_sign_bug = true,
        "K6" => q.minstret_double_counts_div = true,
        "K7" => q.mtval_zero_on_misaligned_store = true,
        "K8" => q.readonly_csr_write_ignored = true,
        "C1" => q.lr_reservation_survives_remote_store = true,
        "C2" => q.stale_shared_line = true,
        "C3" => q.interrupt_mepc_off_by_four = true,
        other => panic!("unknown bug id {other}"),
    }
}

/// I-cache line size per core (bytes).
#[must_use]
pub fn icache_line_size(core: CoreKind) -> u64 {
    match core {
        CoreKind::Rocket | CoreKind::Boom => 64,
        CoreKind::Cva6 => 16, // CVA6's narrower fetch lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_four_novel_cva6_bugs() {
        let novel: Vec<_> = CATALOG.iter().filter(|b| b.novel).collect();
        assert_eq!(novel.len(), 4);
        assert!(novel.iter().all(|b| b.cores == [CoreKind::Cva6]));
        assert!(novel.iter().all(|b| b.id.starts_with('V')));
    }

    #[test]
    fn every_core_carries_known_bugs() {
        for core in CoreKind::ALL {
            let known = bugs_for(core).iter().filter(|b| !b.novel).count();
            assert!(known >= 2, "{core:?} needs known bugs for §VII");
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = CATALOG.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), CATALOG.len());
    }

    #[test]
    fn find_and_quirks_roundtrip() {
        assert!(find("V1").is_some());
        assert!(find("nope").is_none());
        let q = quirks_for(CoreKind::Cva6);
        assert!(q.pmp_grace_window);
        assert!(q.skip_misaligned_jump_check);
        assert!(q.feq_nv_flag_missing_on_unboxed);
        assert_eq!(q.crash_on_store_to_fetch_line, Some(16));
        assert!(q.mtval_zero_on_misaligned_store);
        assert!(!q.fdiv_dz_flag_missing, "K1 is Rocket-only");

        let q = quirks_for(CoreKind::Rocket);
        assert!(q.fdiv_dz_flag_missing && q.sc_ignores_reservation);
        assert!(!q.pmp_grace_window);

        let q = quirks_for(CoreKind::Boom);
        assert!(q.fmin_nan_propagation_wrong && q.mulhsu_sign_bug);
        assert!(q.minstret_double_counts_div);
    }

    #[test]
    fn enable_single_bug() {
        let mut q = Quirks::default();
        enable(&mut q, "V2", CoreKind::Cva6);
        assert!(q.pmp_grace_window);
        assert_eq!(
            q,
            Quirks {
                pmp_grace_window: true,
                ..Quirks::default()
            }
        );
    }

    #[test]
    #[should_panic(expected = "unknown bug id")]
    fn enable_rejects_unknown_ids() {
        enable(&mut Quirks::default(), "Z9", CoreKind::Rocket);
    }

    #[test]
    fn concurrency_class_covers_all_cores() {
        let conc: Vec<_> = CATALOG.iter().filter(|b| b.concurrency).collect();
        assert_eq!(conc.len(), 3);
        assert!(conc.iter().all(|b| b.id.starts_with('C')));
        for core in CoreKind::ALL {
            assert!(
                conc.iter().all(|b| b.cores.contains(&core)),
                "{core:?} must carry the concurrency defects"
            );
        }
        // And only the C bugs are concurrency-flagged.
        assert!(CATALOG
            .iter()
            .filter(|b| !b.id.starts_with('C'))
            .all(|b| !b.concurrency));
    }

    #[test]
    fn concurrency_quirks_enable_individually() {
        type Probe = fn(&Quirks) -> bool;
        let probes: [(&str, Probe); 3] = [
            ("C1", |q| q.lr_reservation_survives_remote_store),
            ("C2", |q| q.stale_shared_line),
            ("C3", |q| q.interrupt_mepc_off_by_four),
        ];
        for (id, probe) in probes {
            let mut q = Quirks::default();
            enable(&mut q, id, CoreKind::Rocket);
            assert!(probe(&q), "{id} must flip its quirk");
        }
        // quirks_for now includes the concurrency defects on every core.
        for core in CoreKind::ALL {
            let q = quirks_for(core);
            assert!(q.lr_reservation_survives_remote_store && q.stale_shared_line);
            assert!(q.interrupt_mepc_off_by_four);
        }
    }
}
