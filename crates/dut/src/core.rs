//! The device-under-test core model: an instrumented micro-architectural
//! simulation of one RISC-V core configuration.
//!
//! A [`Dut`] embeds the architectural executor from `hfl-grm` configured
//! with the core's injected defects ([`crate::bugs`]), and layers on top of
//! it the structures an RTL implementation would have — instruction/data
//! caches with write-back FSMs, a branch predictor, a hazard scoreboard and
//! multi-cycle functional units — each instrumented with line/condition/FSM
//! coverage points ([`crate::coverage`]).
//!
//! The coverage space is deliberately *graded*: a shallow stratum any
//! random stimulus reaches quickly (decode lines, simple conditions), a
//! middle stratum needing specific operand/address choices (region
//! targeting, misalignment, predictor training), and a deep stratum
//! needing correlated instruction *sequences* (dirty-line write-backs,
//! `lr`/`sc` pairs, self-modifying-code refetches, divide-overflow
//! set-ups, FP flag chains). That structure — shallow saturates, deep
//! needs guidance — is what makes the paper's coverage results
//! reproducible.

use std::collections::HashSet;

use hfl_grm::cpu::{Cpu, HaltReason, StepInfo, StepOutcome};
use hfl_grm::pmp::AccessKind;
use hfl_grm::program::Program;
use hfl_grm::trace::{ArchSnapshot, Trace};
use hfl_riscv::vocab::mem_map;
use hfl_riscv::{Format, Opcode, RegClass};

use crate::bugs;
use crate::cache::{Cache, CacheEvent};
use crate::coverage::{CoverageKind, CoverageMap, CoverageSnapshot, PointId};
use crate::pipeline::{div_latency, BranchPredictor, IssueEvent, MultiCycleUnit, Scoreboard};
use crate::CoreKind;

/// Static configuration of one core model.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Core family.
    pub kind: CoreKind,
    /// I-cache geometry: `(sets, ways, line bytes)`.
    pub icache: (usize, usize, u64),
    /// D-cache geometry: `(sets, ways, line bytes)`.
    pub dcache: (usize, usize, u64),
    /// Branch-predictor entries.
    pub bp_entries: usize,
    /// Whether the predictor hashes in global history (Boom-style).
    pub bp_history: bool,
    /// Pipeline-flush penalty on a mispredict, in cycles.
    pub mispredict_penalty: u64,
    /// Base latency of the FP divide/sqrt unit.
    pub fdiv_latency: u64,
    /// Whether the model exposes out-of-order structures (ROB/MSHR points).
    pub out_of_order: bool,
    /// Whether the model exposes a PMP checker unit (CVA6).
    pub pmp_unit: bool,
}

impl CoreConfig {
    /// The configuration for a core family, mirroring the real cores'
    /// relative complexity (Boom > CVA6 > Rocket). Cache geometries are
    /// scaled down with the memory map so that set conflicts are reachable
    /// within short test cases, as they are on the real cores under long
    /// fuzzing campaigns.
    #[must_use]
    pub fn for_kind(kind: CoreKind) -> CoreConfig {
        match kind {
            CoreKind::Rocket => CoreConfig {
                kind,
                icache: (16, 2, 64),
                dcache: (8, 2, 64),
                bp_entries: 64,
                bp_history: false,
                mispredict_penalty: 3,
                fdiv_latency: 18,
                out_of_order: false,
                pmp_unit: false,
            },
            CoreKind::Boom => CoreConfig {
                kind,
                icache: (32, 4, 64),
                dcache: (16, 4, 64),
                bp_entries: 256,
                bp_history: true,
                mispredict_penalty: 8,
                fdiv_latency: 14,
                out_of_order: true,
                pmp_unit: false,
            },
            CoreKind::Cva6 => CoreConfig {
                kind,
                icache: (16, 4, 16),
                dcache: (8, 2, 16),
                bp_entries: 128,
                bp_history: false,
                mispredict_penalty: 5,
                fdiv_latency: 20,
                out_of_order: false,
                pmp_unit: true,
            },
        }
    }
}

/// Precomputed coverage-point handles.
#[derive(Debug, Clone)]
struct Points {
    // ---- Lines ----
    fetch_req: PointId,
    decode_op: Vec<PointId>, // indexed by Opcode::index(); pseudo slots unused
    trap_cause: Vec<PointId>,
    trap_return: PointId,
    trap_back_to_back: PointId,
    mret_then_trap: PointId,
    flush_fencei: PointId,
    wb_int: PointId,
    wb_fp: PointId,
    lsu_load: PointId,
    lsu_store: PointId,
    lsu_amo: PointId,
    lsu_region: [PointId; 6], // code, data, protected, stack, scratch, unmapped
    lr_then_sc: PointId,
    csr_access: PointId,
    csr_group: [PointId; 4], // fp, counter, trap-setup, pmp
    icache_invalidate: PointId,
    modified_refetch: PointId,
    fpu_s_after_d: PointId,
    ras_push: PointId,
    ras_pop: PointId,
    ras_underflow: PointId,
    // ---- Conditions (true/false pairs) ----
    c_raw1: (PointId, PointId),
    c_raw2: (PointId, PointId),
    c_load_use: (PointId, PointId),
    c_waw: (PointId, PointId),
    c_result_zero: (PointId, PointId),
    c_result_neg: (PointId, PointId),
    c_bp_taken: (PointId, PointId),
    c_bp_correct: (PointId, PointId),
    c_btb_hit: (PointId, PointId),
    c_mem_misaligned: (PointId, PointId),
    c_mem_line_cross: (PointId, PointId),
    c_dcache_hit: (PointId, PointId),
    c_dcache_conflict: (PointId, PointId),
    c_dirty_victim: (PointId, PointId),
    c_store_to_code: (PointId, PointId),
    c_store_own_line: (PointId, PointId),
    c_sc_success: (PointId, PointId),
    c_div_by_zero: (PointId, PointId),
    c_div_overflow: (PointId, PointId),
    c_div_long: (PointId, PointId),
    c_mul_high_nonzero: (PointId, PointId),
    c_shift_ge32: (PointId, PointId),
    c_word_sign_flip: (PointId, PointId),
    c_fflag_nv: (PointId, PointId),
    c_fflag_dz: (PointId, PointId),
    c_fflag_of: (PointId, PointId),
    c_fp_unboxed: (PointId, PointId),
    c_trap_taken: (PointId, PointId),
    c_loop_backedge: (PointId, PointId),
    c_compressed: (PointId, PointId), // true side is unreachable (dead)
    c_csr_readonly: (PointId, PointId),
    c_pmp_match: Option<(PointId, PointId)>,
    c_pmp_grant: Option<(PointId, PointId)>,
    // ---- FSM states ----
    f_icache: [PointId; 4],       // idle, lookup, refill, invalidate
    f_dcache: [PointId; 6],       // idle, lookup, refill, writeback, store, amo
    f_div: [PointId; 3],          // idle, busy, drain
    f_fpu: [PointId; 5],          // idle, addpipe, mulpipe, divsqrt, cmp
    f_trap: [PointId; 4],         // idle, save, redirect, return
    f_bp: [PointId; 4],           // strong_nt, weak_nt, weak_t, strong_t
    f_ras: [PointId; 3],          // empty, shallow, deep
    f_rob: Option<[PointId; 4]>,  // Boom: empty, fill, full, flush
    f_mshr: Option<[PointId; 3]>, // Boom: idle, pending, refill
    // Deliberately-unreachable units: registered so the coverage space has
    // the dead points the paper's §IV-C filtering step removes, never hit.
    #[allow(dead_code)]
    f_ptw: [PointId; 4], // page-table walker (no virtual memory in tests)
    #[allow(dead_code)]
    f_debug: [PointId; 3], // debug module
}

fn cond_pair(map: &mut CoverageMap, name: &str) -> (PointId, PointId) {
    (
        map.register(CoverageKind::Condition, &format!("cond:{name}:T")),
        map.register(CoverageKind::Condition, &format!("cond:{name}:F")),
    )
}

fn fsm_states<const N: usize>(map: &mut CoverageMap, fsm: &str, states: [&str; N]) -> [PointId; N] {
    states.map(|s| map.register(CoverageKind::Fsm, &format!("fsm:{fsm}:{s}")))
}

impl Points {
    #[allow(clippy::too_many_lines)]
    fn register(map: &mut CoverageMap, config: &CoreConfig) -> Points {
        let line = |map: &mut CoverageMap, name: &str| {
            map.register(CoverageKind::Line, &format!("line:{name}"))
        };
        let decode_op = Opcode::ALL
            .iter()
            .map(|op| {
                if op.is_pseudo() {
                    // Placeholder: pseudo ops never retire. Reuse a common
                    // dead line so indexing stays simple.
                    map.register(CoverageKind::Line, "line:decode:pseudo_slot")
                } else {
                    map.register(
                        CoverageKind::Line,
                        &format!("line:decode:op_{}", op.mnemonic()),
                    )
                }
            })
            .collect();
        let trap_cause = (0..16)
            .map(|c| map.register(CoverageKind::Line, &format!("line:trap:cause_{c}")))
            .collect();
        Points {
            fetch_req: line(map, "fetch:req"),
            decode_op,
            trap_cause,
            trap_return: line(map, "trap:mret"),
            trap_back_to_back: line(map, "trap:back_to_back"),
            mret_then_trap: line(map, "trap:mret_then_trap"),
            flush_fencei: line(map, "frontend:fencei_flush"),
            wb_int: line(map, "wb:int"),
            wb_fp: line(map, "wb:fp"),
            lsu_load: line(map, "lsu:load"),
            lsu_store: line(map, "lsu:store"),
            lsu_amo: line(map, "lsu:amo"),
            lsu_region: [
                line(map, "lsu:region_code"),
                line(map, "lsu:region_data"),
                line(map, "lsu:region_protected"),
                line(map, "lsu:region_stack"),
                line(map, "lsu:region_scratch"),
                line(map, "lsu:region_unmapped"),
            ],
            lr_then_sc: line(map, "lsu:lr_then_sc_success"),
            csr_access: line(map, "csr:access"),
            csr_group: [
                line(map, "csr:group_fp"),
                line(map, "csr:group_counter"),
                line(map, "csr:group_trap_setup"),
                line(map, "csr:group_pmp"),
            ],
            icache_invalidate: line(map, "icache:store_snoop_invalidate"),
            modified_refetch: line(map, "icache:modified_line_refetch"),
            fpu_s_after_d: line(map, "fpu:single_after_double"),
            ras_push: line(map, "frontend:ras_push"),
            ras_pop: line(map, "frontend:ras_pop"),
            ras_underflow: line(map, "frontend:ras_underflow"),
            c_raw1: cond_pair(map, "ex:raw_dist1"),
            c_raw2: cond_pair(map, "ex:raw_dist2"),
            c_load_use: cond_pair(map, "ex:load_use_stall"),
            c_waw: cond_pair(map, "ex:waw"),
            c_result_zero: cond_pair(map, "ex:result_zero"),
            c_result_neg: cond_pair(map, "ex:result_negative"),
            c_bp_taken: cond_pair(map, "bp:predicted_taken"),
            c_bp_correct: cond_pair(map, "bp:correct"),
            c_btb_hit: cond_pair(map, "bp:btb_hit"),
            c_mem_misaligned: cond_pair(map, "lsu:misaligned"),
            c_mem_line_cross: cond_pair(map, "lsu:line_cross"),
            c_dcache_hit: cond_pair(map, "dcache:hit"),
            c_dcache_conflict: cond_pair(map, "dcache:set_conflict"),
            c_dirty_victim: cond_pair(map, "dcache:dirty_victim"),
            c_store_to_code: cond_pair(map, "lsu:store_to_code"),
            c_store_own_line: cond_pair(map, "lsu:store_same_line_as_pc"),
            c_sc_success: cond_pair(map, "lsu:sc_success"),
            c_div_by_zero: cond_pair(map, "div:by_zero"),
            c_div_overflow: cond_pair(map, "div:overflow"),
            c_div_long: cond_pair(map, "div:long_operand"),
            c_mul_high_nonzero: cond_pair(map, "mul:high_bits_nonzero"),
            c_shift_ge32: cond_pair(map, "ex:shift_ge_32"),
            c_word_sign_flip: cond_pair(map, "ex:word_result_negative"),
            c_fflag_nv: cond_pair(map, "fpu:flag_nv"),
            c_fflag_dz: cond_pair(map, "fpu:flag_dz"),
            c_fflag_of: cond_pair(map, "fpu:flag_of"),
            c_fp_unboxed: cond_pair(map, "fpu:unboxed_input"),
            c_trap_taken: cond_pair(map, "trap:taken"),
            c_loop_backedge: cond_pair(map, "bp:loop_backedge"),
            c_compressed: cond_pair(map, "decode:is_compressed"),
            c_csr_readonly: cond_pair(map, "csr:addr_readonly"),
            c_pmp_match: config.pmp_unit.then(|| cond_pair(map, "pmp:match")),
            c_pmp_grant: config.pmp_unit.then(|| cond_pair(map, "pmp:grant")),
            f_icache: fsm_states(map, "icache", ["idle", "lookup", "refill", "invalidate"]),
            f_dcache: fsm_states(
                map,
                "dcache",
                [
                    "idle",
                    "lookup",
                    "refill",
                    "writeback",
                    "store_buf",
                    "amo_lock",
                ],
            ),
            f_div: fsm_states(map, "div", ["idle", "busy", "drain"]),
            f_fpu: fsm_states(
                map,
                "fpu",
                ["idle", "add_pipe", "mul_pipe", "div_sqrt", "cmp"],
            ),
            f_trap: fsm_states(map, "trap", ["idle", "save", "redirect", "mret"]),
            f_bp: fsm_states(map, "bp", ["strong_nt", "weak_nt", "weak_t", "strong_t"]),
            f_ras: fsm_states(map, "ras", ["empty", "shallow", "deep"]),
            f_rob: config
                .out_of_order
                .then(|| fsm_states(map, "rob", ["empty", "fill", "full", "flush"])),
            f_mshr: config
                .out_of_order
                .then(|| fsm_states(map, "mshr", ["idle", "pending", "refill"])),
            f_ptw: fsm_states(map, "ptw", ["idle", "l1", "l2", "fault"]),
            f_debug: fsm_states(map, "debug", ["idle", "halted", "resume"]),
        }
    }
}

/// Registers the coverage points of units the test environment can never
/// exercise — interrupt delivery, supervisor/user mode, virtual memory,
/// debug, ECC and bus-error paths. Real RTL coverage spaces are dominated
/// by such points; the paper reports that more than 70% of RocketChip's
/// points were dead and filtered before training the predictor (§IV-C).
fn register_dead_banks(map: &mut CoverageMap, config: &CoreConfig) {
    let scale = if config.out_of_order { 3 } else { 2 };
    let units: &[(&str, usize)] = &[
        ("plic", 12 * scale),
        ("clint", 6 * scale),
        ("smode_trap", 10 * scale),
        ("vm_tlb", 12 * scale),
        ("bus_err", 8 * scale),
        ("ecc", 6 * scale),
        ("perf_overflow", 6 * scale),
        ("dbg_abstract", 8 * scale),
    ];
    for (unit, lines) in units {
        for i in 0..*lines {
            map.register(CoverageKind::Line, &format!("line:{unit}:u{i}"));
        }
        for i in 0..(*lines / 2) {
            map.register(CoverageKind::Condition, &format!("cond:{unit}:c{i}:T"));
            map.register(CoverageKind::Condition, &format!("cond:{unit}:c{i}:F"));
        }
        for i in 0..(*lines / 4) {
            map.register(CoverageKind::Fsm, &format!("fsm:{unit}:s{i}"));
        }
    }
}

/// Per-run micro-architectural state (reset with the core on every test
/// case, like an RTL simulation restarted per stimulus). The allocation is
/// kept alive between runs so a pool worker executing thousands of cases
/// never reallocates the cache/predictor tables.
#[derive(Debug, Clone)]
struct MicroState {
    icache: Cache,
    dcache: Cache,
    bp: BranchPredictor,
    scoreboard: Scoreboard,
    div_unit: MultiCycleUnit,
    fpu_unit: MultiCycleUnit,
    /// Code lines invalidated by stores (self-modifying-code tracking).
    invalidated_lines: HashSet<u64>,
    last_fp_was_double: bool,
    steps_since_trap: u64,
    steps_since_mret: u64,
    lr_outstanding: bool,
    ras_depth: u32,
    rob_occupancy: u64,
}

impl MicroState {
    fn new(config: &CoreConfig) -> MicroState {
        MicroState {
            icache: Cache::new(config.icache.0, config.icache.1, config.icache.2),
            dcache: Cache::new(config.dcache.0, config.dcache.1, config.dcache.2),
            bp: BranchPredictor::new(config.bp_entries, config.bp_history),
            scoreboard: Scoreboard::new(),
            div_unit: MultiCycleUnit::new(),
            fpu_unit: MultiCycleUnit::new(),
            invalidated_lines: HashSet::new(),
            last_fp_was_double: false,
            steps_since_trap: u64::MAX,
            steps_since_mret: u64::MAX,
            lr_outstanding: false,
            ras_depth: 0,
            rob_occupancy: 0,
        }
    }

    /// Returns every unit to its power-on state in place (geometry never
    /// changes for a given core, so no reallocation is needed).
    fn reset(&mut self) {
        self.icache.reset();
        self.dcache.reset();
        self.bp.reset();
        self.scoreboard = Scoreboard::new();
        self.div_unit = MultiCycleUnit::new();
        self.fpu_unit = MultiCycleUnit::new();
        self.invalidated_lines.clear();
        self.last_fp_was_double = false;
        self.steps_since_trap = u64::MAX;
        self.steps_since_mret = u64::MAX;
        self.lr_outstanding = false;
        self.ras_depth = 0;
        self.rob_occupancy = 0;
    }
}

/// Result of running one test case on the DUT.
#[derive(Debug, Clone)]
pub struct DutResult {
    /// Why the run ended.
    pub halt: HaltReason,
    /// Retired/trapped instruction count.
    pub steps: u64,
    /// Modelled cycle count (with cache/branch/unit penalties).
    pub cycles: u64,
    /// The architectural trace.
    pub trace: Trace,
    /// Final architectural state.
    pub arch: ArchSnapshot,
    /// Coverage points hit by this test case.
    pub coverage: CoverageSnapshot,
}

/// An instrumented core model (see module docs).
///
/// # Examples
///
/// ```
/// use hfl_dut::{CoreKind, Dut};
/// use hfl_grm::Program;
/// use hfl_riscv::{Instruction, Opcode, Reg};
///
/// let mut dut = Dut::new(CoreKind::Rocket);
/// let program = Program::assemble(&[
///     Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 42),
/// ]);
/// let result = dut.run_program(&program, 10_000);
/// assert_eq!(result.arch.x[10], 42);
/// assert!(result.coverage.count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Dut {
    config: CoreConfig,
    coverage: CoverageMap,
    points: Points,
    /// Reused between runs (taken out while a run is in flight so `observe`
    /// can borrow the rest of the DUT mutably alongside it).
    micro: Option<MicroState>,
}

impl Dut {
    /// Creates the instrumented model for one core family with its full
    /// defect catalogue injected.
    #[must_use]
    pub fn new(kind: CoreKind) -> Dut {
        let config = CoreConfig::for_kind(kind);
        let mut coverage = CoverageMap::new();
        let points = Points::register(&mut coverage, &config);
        register_dead_banks(&mut coverage, &config);
        Dut {
            config,
            coverage,
            points,
            micro: None,
        }
    }

    /// The core family.
    #[must_use]
    pub fn kind(&self) -> CoreKind {
        self.config.kind
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The coverage-point database (points persist across runs).
    #[must_use]
    pub fn coverage_map(&self) -> &CoverageMap {
        &self.coverage
    }

    /// Runs one test case from reset, returning trace + coverage.
    ///
    /// Every run starts from a cold core (fresh caches, predictor, CSRs),
    /// matching an RTL simulation that resets the DUT per stimulus.
    pub fn run_program(&mut self, program: &Program, max_steps: u64) -> DutResult {
        let quirks = bugs::quirks_for(self.config.kind);
        self.run_program_with_quirks(program, max_steps, quirks)
    }

    /// Runs one test case with an explicit defect configuration (used by
    /// the per-bug detection experiments).
    pub fn run_program_with_quirks(
        &mut self,
        program: &Program,
        max_steps: u64,
        quirks: hfl_grm::cpu::Quirks,
    ) -> DutResult {
        self.run_inner(program, None, max_steps, quirks)
    }

    /// Runs one test case dispatching over a predecoded image of
    /// `program`, skipping the per-step fetch+decode. Coverage, trace and
    /// architectural results are bit-identical to [`Dut::run_program`]:
    /// the micro-architectural overlay consumes every [`StepInfo`] either
    /// way (so unlike the GRM there is no superinstruction block path
    /// here — the win is the fetch/decode elimination).
    pub fn run_predecoded(
        &mut self,
        program: &Program,
        image: &hfl_grm::PredecodedProgram,
        max_steps: u64,
    ) -> DutResult {
        let quirks = bugs::quirks_for(self.config.kind);
        self.run_predecoded_with_quirks(program, image, max_steps, quirks)
    }

    /// [`Dut::run_predecoded`] with an explicit defect configuration.
    pub fn run_predecoded_with_quirks(
        &mut self,
        program: &Program,
        image: &hfl_grm::PredecodedProgram,
        max_steps: u64,
        quirks: hfl_grm::cpu::Quirks,
    ) -> DutResult {
        self.run_inner(program, Some(image), max_steps, quirks)
    }

    fn run_inner(
        &mut self,
        program: &Program,
        image: Option<&hfl_grm::PredecodedProgram>,
        max_steps: u64,
        quirks: hfl_grm::cpu::Quirks,
    ) -> DutResult {
        let mut cpu = Cpu::with_quirks(quirks);
        cpu.load_program(program);
        let mut micro = match self.micro.take() {
            Some(mut m) => {
                m.reset();
                m
            }
            None => MicroState::new(&self.config),
        };
        self.coverage.clear_hits();

        let mut cycles: u64 = 0;
        let mut steps: u64 = 0;
        let halt;
        loop {
            if steps >= max_steps {
                halt = HaltReason::StepBudget;
                break;
            }
            let info = match image {
                Some(image) => cpu.step_predecoded(image),
                None => cpu.step(),
            };
            if let StepOutcome::Halted(reason) = info.outcome {
                halt = reason;
                break;
            }
            steps += 1;
            cycles += 1;
            cycles += self.observe(&info, &cpu, &mut micro, cycles);
        }
        self.micro = Some(micro);
        DutResult {
            halt,
            steps,
            cycles,
            arch: cpu.arch_snapshot(),
            trace: std::mem::take(&mut cpu.trace),
            coverage: self.coverage.take_snapshot(),
        }
    }

    /// Feeds one architectural step through the micro-architectural models,
    /// hitting coverage points; returns the extra cycles the step cost.
    #[allow(clippy::too_many_lines)]
    fn observe(&mut self, info: &StepInfo, cpu: &Cpu, micro: &mut MicroState, now: u64) -> u64 {
        let p = &self.points;
        let cov = &mut self.coverage;
        let mut extra: u64 = 0;
        micro.steps_since_trap = micro.steps_since_trap.saturating_add(1);
        micro.steps_since_mret = micro.steps_since_mret.saturating_add(1);

        // ---- Frontend: every step issues a fetch. ----
        cov.hit(p.fetch_req);
        cov.hit(p.f_icache[0]);
        cov.hit(p.f_icache[1]);
        let fetch_event = micro.icache.access(info.pc, false);
        if fetch_event.is_miss() {
            cov.hit(p.f_icache[2]);
            extra += fetch_event.penalty();
            // Refetching a line a store previously invalidated: the
            // self-modifying-code path (deep, sequence-dependent).
            let line = micro.icache.line_of(info.pc);
            if micro.invalidated_lines.remove(&line) {
                cov.hit(p.modified_refetch);
            }
        }
        // No compressed instructions exist in the vocabulary: the true
        // polarity is a permanently-dead condition point, like the unused
        // RTL paths the paper's dead-point filtering removes.
        cov.hit(p.c_compressed.1);

        let Some(inst) = info.inst else {
            // Fetch/decode fault: only the trap path fires.
            if let StepOutcome::Trapped(trap) = info.outcome {
                self.observe_trap(trap.cause, micro);
            }
            return extra;
        };
        let op = inst.opcode;

        // ---- Decode ----
        cov.hit(p.decode_op[op.index()]);

        // ---- Hazards / scoreboard ----
        let spec = op.spec();
        let mut reads: Vec<(u8, bool)> = Vec::with_capacity(3);
        if let Some(class) = spec.rs1 {
            reads.push((inst.rs1, class == RegClass::Fp));
        }
        if let Some(class) = spec.rs2 {
            reads.push((inst.rs2, class == RegClass::Fp));
        }
        if let Some(class) = spec.rs3 {
            reads.push((inst.rs3, class == RegClass::Fp));
        }
        let write = spec.rd.map(|class| (inst.rd, class == RegClass::Fp));
        let is_load = info.mem.is_some_and(|m| !m.is_store);
        let hz = micro.scoreboard.step(&reads, write, is_load);
        cov.hit_cond(hz.raw_dist1, p.c_raw1.0, p.c_raw1.1);
        cov.hit_cond(hz.raw_dist2, p.c_raw2.0, p.c_raw2.1);
        cov.hit_cond(hz.load_use, p.c_load_use.0, p.c_load_use.1);
        cov.hit_cond(hz.waw, p.c_waw.0, p.c_waw.1);
        if hz.load_use {
            extra += 1;
        }

        // ---- Execute / writeback ----
        if let Some((is_fp, _, value)) = info.rd_write {
            cov.hit(if is_fp { p.wb_fp } else { p.wb_int });
            cov.hit_cond(value == 0, p.c_result_zero.0, p.c_result_zero.1);
            cov.hit_cond((value as i64) < 0, p.c_result_neg.0, p.c_result_neg.1);
        }
        // ALU corner conditions.
        if matches!(op, Opcode::Slli | Opcode::Srli | Opcode::Srai) {
            cov.hit_cond(inst.imm >= 32, p.c_shift_ge32.0, p.c_shift_ge32.1);
        }
        if matches!(
            op,
            Opcode::Addw
                | Opcode::Subw
                | Opcode::Sllw
                | Opcode::Srlw
                | Opcode::Sraw
                | Opcode::Addiw
                | Opcode::Slliw
                | Opcode::Srliw
                | Opcode::Sraiw
                | Opcode::Mulw
        ) {
            if let Some((_, _, value)) = info.rd_write {
                cov.hit_cond(
                    value as u32 & 0x8000_0000 != 0,
                    p.c_word_sign_flip.0,
                    p.c_word_sign_flip.1,
                );
            }
        }
        if matches!(op, Opcode::Mulh | Opcode::Mulhu | Opcode::Mulhsu) {
            if let Some((_, _, value)) = info.rd_write {
                cov.hit_cond(
                    value != 0 && value != u64::MAX,
                    p.c_mul_high_nonzero.0,
                    p.c_mul_high_nonzero.1,
                );
            }
        }

        // ---- Branch prediction and the return-address stack ----
        if let Some((taken, target)) = info.branch {
            if op.is_control_flow() && op != Opcode::Mret {
                let pred = micro.bp.resolve(info.pc, taken, target);
                cov.hit_cond(pred.predicted_taken, p.c_bp_taken.0, p.c_bp_taken.1);
                cov.hit_cond(pred.correct, p.c_bp_correct.0, p.c_bp_correct.1);
                cov.hit_cond(pred.btb_hit, p.c_btb_hit.0, p.c_btb_hit.1);
                cov.hit(p.f_bp[usize::from(pred.counter_after.min(3))]);
                cov.hit_cond(
                    taken && target < info.pc,
                    p.c_loop_backedge.0,
                    p.c_loop_backedge.1,
                );
                if !pred.correct {
                    extra += self.config.mispredict_penalty;
                    if let Some(rob) = &p.f_rob {
                        cov.hit(rob[3]); // flush
                    }
                }
            }
            // Return-address stack: calls (link register writes) push,
            // `ret`-shaped jumps pop. Cascade-style generators that strip
            // control flow never touch this unit.
            let is_call = matches!(op, Opcode::Jal | Opcode::Jalr) && inst.rd == 1;
            let is_return = op == Opcode::Jalr && inst.rd == 0 && inst.rs1 == 1;
            if is_call {
                cov.hit(p.ras_push);
                micro.ras_depth = micro.ras_depth.saturating_add(1);
            } else if is_return {
                if micro.ras_depth == 0 {
                    cov.hit(p.ras_underflow);
                } else {
                    cov.hit(p.ras_pop);
                    micro.ras_depth -= 1;
                }
            }
            cov.hit(
                p.f_ras[match micro.ras_depth {
                    0 => 0,
                    1 => 1,
                    _ => 2,
                }],
            );
        }

        // ---- Integer divider ----
        if matches!(
            op,
            Opcode::Div
                | Opcode::Divu
                | Opcode::Rem
                | Opcode::Remu
                | Opcode::Divw
                | Opcode::Divuw
                | Opcode::Remw
                | Opcode::Remuw
        ) {
            cov.hit(p.f_div[0]);
            cov.hit(p.f_div[1]);
            let dividend = info.rd_write.map_or(0, |(_, _, v)| v);
            let latency = div_latency(dividend);
            cov.hit_cond(latency > 8, p.c_div_long.0, p.c_div_long.1);
            let (event, _) = micro.div_unit.issue(now, latency);
            if event == IssueEvent::StalledThenAccepted {
                cov.hit(p.f_div[2]);
                extra += 2;
            }
            extra += latency / 2; // overlapped with independent work
            let by_zero = info.rd_write.is_some_and(|(_, _, v)| v == u64::MAX);
            cov.hit_cond(by_zero, p.c_div_by_zero.0, p.c_div_by_zero.1);
            let overflow = info.rd_write.is_some_and(|(_, _, v)| v == i64::MIN as u64);
            cov.hit_cond(overflow, p.c_div_overflow.0, p.c_div_overflow.1);
        }

        // ---- Floating-point unit ----
        if op.is_fp() {
            cov.hit(p.f_fpu[0]);
            let (state, latency): (usize, u64) = match op {
                Opcode::FaddS
                | Opcode::FsubS
                | Opcode::FaddD
                | Opcode::FsubD
                | Opcode::FmaddS
                | Opcode::FmsubS
                | Opcode::FnmsubS
                | Opcode::FnmaddS
                | Opcode::FmaddD
                | Opcode::FmsubD
                | Opcode::FnmsubD
                | Opcode::FnmaddD => (1, 3),
                Opcode::FmulS | Opcode::FmulD => (2, 4),
                Opcode::FdivS | Opcode::FdivD | Opcode::FsqrtS | Opcode::FsqrtD => {
                    (3, self.config.fdiv_latency)
                }
                Opcode::FeqS
                | Opcode::FltS
                | Opcode::FleS
                | Opcode::FeqD
                | Opcode::FltD
                | Opcode::FleD
                | Opcode::FminS
                | Opcode::FmaxS
                | Opcode::FminD
                | Opcode::FmaxD
                | Opcode::FclassS
                | Opcode::FclassD => (4, 1),
                _ => (0, 1), // moves, conversions, loads/stores
            };
            if state != 0 {
                cov.hit(p.f_fpu[state]);
            }
            let (event, _) = micro.fpu_unit.issue(now, latency);
            if event == IssueEvent::StalledThenAccepted {
                extra += 2;
            }
            if latency > 4 {
                extra += latency / 2;
            }
            cov.hit_cond(info.fp_flags & 0x10 != 0, p.c_fflag_nv.0, p.c_fflag_nv.1);
            cov.hit_cond(info.fp_flags & 0x08 != 0, p.c_fflag_dz.0, p.c_fflag_dz.1);
            cov.hit_cond(info.fp_flags & 0x04 != 0, p.c_fflag_of.0, p.c_fflag_of.1);
            // NaN-boxing path: single-precision ops with unboxed inputs,
            // and precision interleaving.
            let is_single = op.mnemonic().ends_with(".s") || op == Opcode::Flw || op == Opcode::Fsw;
            if is_single && !matches!(op, Opcode::Flw | Opcode::Fsw) {
                cov.hit_cond(info.fp_unboxed_input, p.c_fp_unboxed.0, p.c_fp_unboxed.1);
                if micro.last_fp_was_double {
                    cov.hit(p.fpu_s_after_d);
                }
            }
            micro.last_fp_was_double = op.mnemonic().ends_with(".d") || op == Opcode::Fld;
        }

        // ---- Load/store unit and D-cache ----
        if let Some(mem) = info.mem {
            cov.hit(p.f_dcache[0]);
            cov.hit(p.f_dcache[1]);
            let is_amo = matches!(op.format(), Format::Amo | Format::AmoLr);
            if is_amo {
                cov.hit(p.lsu_amo);
                cov.hit(p.f_dcache[5]);
            } else if mem.is_store {
                cov.hit(p.lsu_store);
                cov.hit(p.f_dcache[4]);
            } else {
                cov.hit(p.lsu_load);
            }
            // Region classification.
            cov.hit(p.lsu_region[region_of(mem.addr)]);
            // lr/sc tracking.
            if matches!(op, Opcode::LrW | Opcode::LrD) {
                micro.lr_outstanding = true;
            }
            if matches!(op, Opcode::ScW | Opcode::ScD) {
                let success = info.rd_write.is_some_and(|(_, _, v)| v == 0);
                cov.hit_cond(success, p.c_sc_success.0, p.c_sc_success.1);
                if success && micro.lr_outstanding {
                    cov.hit(p.lr_then_sc);
                }
                micro.lr_outstanding = false;
            }
            cov.hit_cond(
                mem.addr % u64::from(mem.size) != 0,
                p.c_mem_misaligned.0,
                p.c_mem_misaligned.1,
            );
            let line = micro.dcache.line_size();
            let crosses = (mem.addr % line) + u64::from(mem.size) > line;
            cov.hit_cond(crosses, p.c_mem_line_cross.0, p.c_mem_line_cross.1);
            let event = micro.dcache.access(mem.addr, mem.is_store);
            cov.hit_cond(event == CacheEvent::Hit, p.c_dcache_hit.0, p.c_dcache_hit.1);
            cov.hit_cond(
                event.evicted(),
                p.c_dcache_conflict.0,
                p.c_dcache_conflict.1,
            );
            cov.hit_cond(
                event == CacheEvent::MissWriteBack,
                p.c_dirty_victim.0,
                p.c_dirty_victim.1,
            );
            match event {
                CacheEvent::Hit => {}
                CacheEvent::MissCold | CacheEvent::MissEvictClean => {
                    cov.hit(p.f_dcache[2]);
                    if let Some(mshr) = &p.f_mshr {
                        cov.hit(mshr[0]);
                        cov.hit(mshr[1]);
                    }
                }
                CacheEvent::MissWriteBack => {
                    cov.hit(p.f_dcache[2]);
                    cov.hit(p.f_dcache[3]);
                    if let Some(mshr) = &p.f_mshr {
                        cov.hit(mshr[2]);
                    }
                }
            }
            extra += event.penalty();
            if mem.is_store {
                // Store snoop into the I-cache (the V1 mechanism).
                let to_code = mem.addr >= mem_map::CODE_BASE && mem.addr < mem_map::DATA_BASE;
                cov.hit_cond(to_code, p.c_store_to_code.0, p.c_store_to_code.1);
                cov.hit_cond(
                    micro.icache.line_of(mem.addr) == micro.icache.line_of(info.pc),
                    p.c_store_own_line.0,
                    p.c_store_own_line.1,
                );
                if micro.icache.invalidate(mem.addr) {
                    cov.hit(p.icache_invalidate);
                    cov.hit(p.f_icache[3]);
                    micro
                        .invalidated_lines
                        .insert(micro.icache.line_of(mem.addr));
                    extra += 2;
                }
            }
            // PMP checker activity (CVA6).
            if let (Some(m), Some(g)) = (p.c_pmp_match, p.c_pmp_grant) {
                let matched = cpu.csrs.pmp.matching_entry(mem.addr).is_some();
                cov.hit_cond(matched, m.0, m.1);
                if matched {
                    let kind = if mem.is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let granted = cpu.csrs.pmp.allows(mem.addr, kind);
                    cov.hit_cond(granted, g.0, g.1);
                }
            }
        }

        // ---- CSR unit ----
        if matches!(op.format(), Format::Csr | Format::CsrImm) {
            cov.hit(p.csr_access);
            let addr = inst.csr.addr();
            let group = match addr {
                0x001..=0x003 => Some(0),
                0xB00..=0xB9F | 0xC00..=0xC9F => Some(1),
                0x300..=0x344 => Some(2),
                0x3A0..=0x3BF => Some(3),
                _ => None,
            };
            if let Some(g) = group {
                cov.hit(p.csr_group[g]);
            }
            cov.hit_cond(
                inst.csr.is_read_only(),
                p.c_csr_readonly.0,
                p.c_csr_readonly.1,
            );
            extra += 1; // CSR ops serialise the pipeline
        }

        // ---- Fences ----
        if op == Opcode::FenceI {
            cov.hit(p.flush_fencei);
            let wb = micro.dcache.flush() as u64;
            micro.icache.flush();
            micro.invalidated_lines.clear();
            extra += 4 + wb;
        }

        // ---- Traps and returns ----
        match info.outcome {
            StepOutcome::Trapped(trap) => {
                cov.hit_cond(true, p.c_trap_taken.0, p.c_trap_taken.1);
                // Misaligned accesses trap before the cache sees them; the
                // alignment predicate still evaluated true in the LSU.
                if trap.cause == 4 || trap.cause == 6 {
                    cov.hit(p.c_mem_misaligned.0);
                    cov.hit(p.f_dcache[0]);
                }
                // "Back to back": the instruction right after the
                // handler's mret traps again (the handler itself is four
                // instructions long).
                if micro.steps_since_trap <= 6 {
                    cov.hit(p.trap_back_to_back);
                }
                if micro.steps_since_mret <= 2 {
                    cov.hit(p.mret_then_trap);
                }
                self.observe_trap(trap.cause, micro);
                extra += 4;
            }
            _ => {
                cov.hit_cond(false, p.c_trap_taken.0, p.c_trap_taken.1);
            }
        }
        if op == Opcode::Mret {
            self.coverage.hit(self.points.trap_return);
            self.coverage.hit(self.points.f_trap[3]);
            micro.steps_since_mret = 0;
        }

        // ---- ROB occupancy (Boom) ----
        if let Some(rob) = &self.points.f_rob {
            micro.rob_occupancy = (micro.rob_occupancy + 1).min(32);
            self.coverage.hit(rob[0]);
            if micro.rob_occupancy > 4 {
                self.coverage.hit(rob[1]);
            }
            if micro.rob_occupancy >= 32 {
                self.coverage.hit(rob[2]);
            }
            if extra > 8 {
                micro.rob_occupancy = 0; // long stall drains the window
            }
        }

        extra
    }

    fn observe_trap(&mut self, cause: u64, micro: &mut MicroState) {
        let p = &self.points;
        self.coverage.hit(p.f_trap[0]);
        self.coverage.hit(p.f_trap[1]);
        self.coverage.hit(p.f_trap[2]);
        if let Some(point) = p.trap_cause.get(cause as usize) {
            self.coverage.hit(*point);
        }
        micro.steps_since_trap = 0;
    }
}

/// Classifies an address into the test-bench memory regions.
fn region_of(addr: u64) -> usize {
    use mem_map::*;
    if (CODE_BASE..DATA_BASE).contains(&addr) {
        0
    } else if (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&addr) {
        1
    } else if (PROTECTED_BASE..PROTECTED_BASE + PROTECTED_SIZE).contains(&addr) {
        2
    } else if (DATA_BASE + DATA_SIZE..STACK_TOP).contains(&addr) {
        3
    } else if (SCRATCH_BASE..RAM_END).contains(&addr) {
        4
    } else {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl_riscv::{Csr, Instruction, Reg};

    fn nop_program(n: usize) -> Program {
        Program::assemble(&vec![Instruction::NOP; n])
    }

    #[test]
    fn runs_and_reports_coverage() {
        let mut dut = Dut::new(CoreKind::Rocket);
        let result = dut.run_program(&nop_program(4), 10_000);
        assert_eq!(result.halt, HaltReason::ReachedHaltPc);
        assert!(result.coverage.count() > 5);
        assert!(result.cycles >= result.steps);
        assert!(result.steps > 4, "prologue + body");
    }

    #[test]
    fn coverage_map_scale_matches_the_paper() {
        for kind in CoreKind::ALL {
            let dut = Dut::new(kind);
            let map = dut.coverage_map();
            assert!(map.len() >= 400, "{kind:?}: {} points", map.len());
            assert!(map.len_of(CoverageKind::Line) >= 200);
            assert!(map.len_of(CoverageKind::Condition) >= 80);
            assert!(map.len_of(CoverageKind::Fsm) >= 40);
        }
    }

    #[test]
    fn boom_has_more_points_than_rocket() {
        let rocket = Dut::new(CoreKind::Rocket).coverage_map().len();
        let boom = Dut::new(CoreKind::Boom).coverage_map().len();
        let cva6 = Dut::new(CoreKind::Cva6).coverage_map().len();
        assert!(boom > rocket);
        assert!(cva6 > rocket, "cva6 adds the PMP unit points");
    }

    #[test]
    fn distinct_programs_hit_distinct_coverage() {
        let mut dut = Dut::new(CoreKind::Rocket);
        let simple = dut.run_program(&nop_program(2), 10_000);
        let body = vec![
            Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 3),
            Instruction::r(Opcode::Div, Reg::X11, Reg::X10, Reg::X10),
            Instruction::s(Opcode::Sd, Reg::X11, 0, Reg::X5),
            Instruction::i(Opcode::Ld, Reg::X12, Reg::X5, 0),
            Instruction::b(Opcode::Bne, Reg::X12, Reg::X0, 8),
        ];
        let rich = dut.run_program(&Program::assemble(&body), 10_000);
        assert!(rich.coverage.count() > simple.coverage.count());
        assert!(simple.coverage.would_grow(&rich.coverage));
    }

    #[test]
    fn dead_points_exist() {
        // The compressed-instruction true polarity, the PTW and the debug
        // module must never fire.
        let mut dut = Dut::new(CoreKind::Boom);
        let result = dut.run_program(&nop_program(8), 10_000);
        let map = dut.coverage_map();
        let dead = [
            "cond:decode:is_compressed:T",
            "fsm:ptw:idle",
            "fsm:ptw:l1",
            "fsm:debug:halted",
            "line:plic:u0",
        ];
        for name in dead {
            let id = map.find(name).expect(name);
            assert!(!result.coverage.is_hit(id), "{name} must be dead");
        }
        // And the always-on points fire for any program.
        for name in [
            "line:fetch:req",
            "fsm:icache:idle",
            "cond:decode:is_compressed:F",
        ] {
            let id = map.find(name).expect(name);
            assert!(result.coverage.is_hit(id), "{name} must always fire");
        }
    }

    #[test]
    fn trap_coverage_fires_on_ecall() {
        let mut dut = Dut::new(CoreKind::Rocket);
        let program = Program::assemble(&[Instruction::nullary(Opcode::Ecall)]);
        let result = dut.run_program(&program, 10_000);
        let map = dut.coverage_map();
        let cause11 = map.find("line:trap:cause_11").unwrap();
        assert!(result.coverage.is_hit(cause11));
        let mret = map.find("line:trap:mret").unwrap();
        assert!(result.coverage.is_hit(mret), "handler returned via mret");
    }

    #[test]
    fn misaligned_access_condition_fires_despite_the_trap() {
        let mut dut = Dut::new(CoreKind::Rocket);
        let program = Program::assemble(&[Instruction::i(Opcode::Lw, Reg::X10, Reg::X5, 1)]);
        let result = dut.run_program(&program, 10_000);
        let map = dut.coverage_map();
        let misaligned = map.find("cond:lsu:misaligned:T").unwrap();
        assert!(result.coverage.is_hit(misaligned));
    }

    #[test]
    fn dirty_writeback_reachable_with_conflicting_stores() {
        // Rocket d-cache: 8 sets x 2 ways, 64B lines -> addresses 0x200
        // apart share a set.
        let mut dut = Dut::new(CoreKind::Rocket);
        let body = vec![
            Instruction::s(Opcode::Sd, Reg::X10, 0, Reg::X5),
            Instruction::s(Opcode::Sd, Reg::X10, 0x200, Reg::X5),
            Instruction::s(Opcode::Sd, Reg::X10, 0x400, Reg::X5),
            Instruction::s(Opcode::Sd, Reg::X10, 0x600, Reg::X5),
        ];
        let result = dut.run_program(&Program::assemble(&body), 10_000);
        let map = dut.coverage_map();
        let wb = map.find("fsm:dcache:writeback").unwrap();
        assert!(
            result.coverage.is_hit(wb),
            "conflicting dirty stores write back"
        );
        let conflict = map.find("cond:dcache:set_conflict:T").unwrap();
        assert!(result.coverage.is_hit(conflict));
    }

    #[test]
    fn lr_sc_pair_line_requires_the_sequence() {
        let mut dut = Dut::new(CoreKind::Boom);
        let pair = vec![
            Instruction::new(Opcode::LrW, 10, 5, 0, 0, 0, Csr::FFLAGS),
            Instruction::new(Opcode::ScW, 11, 5, 10, 0, 0, Csr::FFLAGS),
        ];
        let result = dut.run_program(&Program::assemble(&pair), 10_000);
        let map = dut.coverage_map();
        let point = map.find("line:lsu:lr_then_sc_success").unwrap();
        assert!(result.coverage.is_hit(point));
        // sc without lr leaves the line unhit.
        let solo = vec![Instruction::new(Opcode::ScW, 11, 5, 10, 0, 0, Csr::FFLAGS)];
        let result = dut.run_program(&Program::assemble(&solo), 10_000);
        assert!(!result.coverage.is_hit(point));
    }

    #[test]
    fn self_modifying_code_refetch_is_deep_coverage() {
        // Overwrite an already-fetched code line with an identical word,
        // then loop back into it: store-snoop invalidate followed by a
        // refetch of the modified line. This needs a store into the code
        // region *and* re-execution — a genuinely sequence-dependent
        // coverage point.
        let probe = Program::assemble(&[Instruction::NOP]);
        let body_off = (probe.body_pc() - mem_map::CODE_BASE) as i64;
        let nop_word = i64::from(Instruction::NOP.encode());
        // i0 @body: x11 += 1
        // i1: x12 = 1
        // i2: if x12 < x11 goto end (second pass)
        // i3: x10 = nop word (0x...13 fits in two steps)
        // i4: sw x10, body_off(t1)  -- invalidates i0's fetched line
        // i5: j -20                  -- re-fetch the modified line
        // i6: end
        // The store overwrites i6 (a NOP) with an identical NOP word, so
        // the loop logic survives while the i-cache sees a genuine
        // modification of a fetched line.
        let body = vec![
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X11, 1),
            Instruction::i(Opcode::Addi, Reg::X12, Reg::X0, 1),
            Instruction::b(Opcode::Blt, Reg::X12, Reg::X11, 16),
            Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, nop_word & 0x7FF),
            Instruction::s(Opcode::Sw, Reg::X10, body_off + 24, Reg::X6),
            Instruction::j(Opcode::Jal, Reg::X0, -20),
            Instruction::NOP,
        ];
        let mut dut = Dut::new(CoreKind::Rocket);
        let result = dut.run_program(&Program::assemble(&body), 10_000);
        assert_eq!(result.halt, HaltReason::ReachedHaltPc);
        let map = dut.coverage_map();
        let refetch = map.find("line:icache:modified_line_refetch").unwrap();
        assert!(result.coverage.is_hit(refetch), "modified-line refetch");
        let invalidate = map.find("line:icache:store_snoop_invalidate").unwrap();
        assert!(result.coverage.is_hit(invalidate));
    }

    #[test]
    fn injected_bugs_change_architectural_results() {
        // The Rocket model carries K2 (sc ignores reservation); the same
        // program on the GRM and the DUT must diverge.
        let program =
            Program::assemble(&[Instruction::new(Opcode::ScW, 11, 5, 10, 0, 0, Csr::FFLAGS)]);
        let mut dut = Dut::new(CoreKind::Rocket);
        let dut_result = dut.run_program(&program, 10_000);
        let mut grm = Cpu::new();
        grm.load_program(&program);
        grm.run(10_000);
        assert_eq!(grm.x[11], 1, "golden: sc fails");
        assert_eq!(dut_result.arch.x[11], 0, "DUT: buggy sc succeeds");
    }

    #[test]
    fn cva6_v1_crash_reaches_the_result() {
        let program = Program::assemble(&[Instruction::NOP]);
        let body_off = (program.body_pc() - 0x8000_0000) as i64;
        let program = Program::assemble(&[
            Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 0x13),
            Instruction::s(Opcode::Sw, Reg::X10, body_off, Reg::X6),
        ]);
        let mut dut = Dut::new(CoreKind::Cva6);
        let result = dut.run_program(&program, 10_000);
        assert!(matches!(result.halt, HaltReason::Crash(_)));
        // Rocket (no V1) survives the same program.
        let mut dut = Dut::new(CoreKind::Rocket);
        let result = dut.run_program(&program, 10_000);
        assert_eq!(result.halt, HaltReason::ReachedHaltPc);
    }

    #[test]
    fn per_run_isolation() {
        let mut dut = Dut::new(CoreKind::Rocket);
        let a = dut.run_program(&nop_program(3), 10_000);
        let b = dut.run_program(&nop_program(3), 10_000);
        assert_eq!(a.coverage, b.coverage, "cold start every run");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.arch, b.arch);
    }

    #[test]
    fn reused_micro_state_matches_a_fresh_dut() {
        // The DUT keeps its micro-architectural allocations alive between
        // runs; the in-place reset must be indistinguishable from a cold
        // construction, even after a state-heavy program.
        let mut warmed = Dut::new(CoreKind::Boom);
        let dirtying = vec![
            Instruction::s(Opcode::Sd, Reg::X10, 0, Reg::X5),
            Instruction::s(Opcode::Sd, Reg::X10, 0x200, Reg::X5),
            Instruction::b(Opcode::Bne, Reg::X10, Reg::X0, 8),
            Instruction::r(Opcode::Div, Reg::X11, Reg::X10, Reg::X10),
        ];
        warmed.run_program(&Program::assemble(&dirtying), 10_000);
        let mut fresh = Dut::new(CoreKind::Boom);
        let probe = Program::assemble(&dirtying);
        let a = warmed.run_program(&probe, 10_000);
        let b = fresh.run_program(&probe, 10_000);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.arch, b.arch);
    }

    #[test]
    fn cycles_exceed_steps_under_misses() {
        let mut dut = Dut::new(CoreKind::Rocket);
        // Strided loads thrash the D-cache.
        let mut body = Vec::new();
        for i in 0..8 {
            body.push(Instruction::i(Opcode::Ld, Reg::X10, Reg::X5, i * 256));
        }
        let result = dut.run_program(&Program::assemble(&body), 10_000);
        assert!(result.cycles > result.steps + 8, "misses cost cycles");
    }

    #[test]
    fn region_classification() {
        use mem_map::*;
        assert_eq!(region_of(CODE_BASE), 0);
        assert_eq!(region_of(DATA_BASE + 0x1FF), 1);
        assert_eq!(region_of(PROTECTED_BASE + 8), 2);
        assert_eq!(region_of(STACK_TOP - 8), 3);
        assert_eq!(region_of(SCRATCH_BASE), 4);
        assert_eq!(region_of(0x1000), 5);
        assert_eq!(region_of(RAM_END), 5);
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;
    use hfl_riscv::{Instruction, Reg};

    #[test]
    fn ras_tracks_calls_and_returns() {
        let mut dut = Dut::new(CoreKind::Rocket);
        // jal ra, +8 (call); then ret (jalr x0, 0(ra)).
        let body = vec![
            Instruction::j(Opcode::Jal, Reg::X1, 8),
            Instruction::NOP, // skipped by the call
            Instruction::i(Opcode::Jalr, Reg::X0, Reg::X1, 4),
        ];
        // The return target is ra+4 = the instruction after the jal's
        // link point... ra holds pc_of_jal + 4; jalr 4(ra) lands at +8
        // from the jal: the jalr itself -> loop guard via halt. Use a
        // simpler shape: call forward, return exactly past the end.
        let result = dut.run_program(&Program::assemble(&body), 2_000);
        let map = dut.coverage_map();
        assert!(result
            .coverage
            .is_hit(map.find("line:frontend:ras_push").unwrap()));
        assert!(result
            .coverage
            .is_hit(map.find("line:frontend:ras_pop").unwrap()));
        assert!(result.coverage.is_hit(map.find("fsm:ras:shallow").unwrap()));
    }

    #[test]
    fn ras_underflow_on_bare_return() {
        let mut dut = Dut::new(CoreKind::Rocket);
        let body = vec![Instruction::i(Opcode::Jalr, Reg::X0, Reg::X1, 0)];
        let result = dut.run_program(&Program::assemble(&body), 2_000);
        let map = dut.coverage_map();
        assert!(result
            .coverage
            .is_hit(map.find("line:frontend:ras_underflow").unwrap()));
        assert!(!result
            .coverage
            .is_hit(map.find("line:frontend:ras_pop").unwrap()));
    }

    #[test]
    fn loop_backedge_condition() {
        let mut dut = Dut::new(CoreKind::Rocket);
        // A two-pass countdown loop: x11 = 1; loop: bne x11, x0, back.
        let body = vec![
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X0, 1),
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X11, -1),
            Instruction::b(Opcode::Bne, Reg::X11, Reg::X0, -4),
        ];
        let result = dut.run_program(&Program::assemble(&body), 2_000);
        let f_point = dut.coverage_map().find("cond:bp:loop_backedge:F").unwrap();
        let t_point = dut.coverage_map().find("cond:bp:loop_backedge:T").unwrap();
        // x11 hits zero immediately, so the backedge is NOT taken here;
        // the false polarity fires.
        assert!(result.coverage.is_hit(f_point));
        // Now an actually-looping variant.
        let body = vec![
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X0, 3),
            Instruction::i(Opcode::Addi, Reg::X11, Reg::X11, -1),
            Instruction::b(Opcode::Bne, Reg::X11, Reg::X0, -4),
        ];
        let result = dut.run_program(&Program::assemble(&body), 2_000);
        assert!(result.coverage.is_hit(t_point));
    }
}
