//! Device-under-test (DUT) models for the HFL reproduction.
//!
//! The paper fuzzes RTL simulations of three RISC-V cores — RocketChip,
//! BOOM and CVA6 — collecting condition/line/FSM coverage and comparing
//! execution against a golden reference model. This crate is the stand-in
//! for those RTL simulations:
//!
//! - [`Dut`] wraps the architectural executor from `hfl-grm` with a
//!   micro-architectural overlay (caches with write-back FSMs, branch
//!   prediction, hazard scoreboard, multi-cycle units),
//! - [`coverage`] provides the line/condition/FSM coverage database an RTL
//!   coverage tool would,
//! - [`bugs`] injects the paper's four novel CVA6 vulnerabilities and the
//!   previously-known defects on all three cores,
//! - [`mhart`] lifts the DUT to a two-hart system configuration on the
//!   `hfl-sys` discrete-event scheduler, with a shared-memory bus and a
//!   timer device, for concurrency-defect fuzzing.
//!
//! # Examples
//!
//! ```
//! use hfl_dut::{CoreKind, Dut};
//! use hfl_grm::Program;
//! use hfl_riscv::{Instruction, Opcode, Reg};
//!
//! let mut dut = Dut::new(CoreKind::Cva6);
//! let program = Program::assemble(&[
//!     Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 7),
//! ]);
//! let result = dut.run_program(&program, 10_000);
//! assert_eq!(result.arch.x[10], 7);
//! println!("hit {} coverage points", result.coverage.count());
//! ```

pub mod bugs;
pub mod cache;
pub mod core;
pub mod coverage;
pub mod mhart;
pub mod pipeline;

pub use crate::core::{CoreConfig, Dut, DutResult};
pub use bugs::{bugs_for, quirks_for, InjectedBug, CATALOG};
pub use coverage::{CoverageKind, CoverageMap, CoverageSnapshot, PointId};
pub use mhart::{CommitEvent, HartResult, MhartMachine, MhartResult};

/// The three RISC-V cores the paper evaluates (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// RocketChip: in-order five-stage core.
    Rocket,
    /// SonicBOOM: superscalar out-of-order core.
    Boom,
    /// CVA6 (Ariane): in-order application-class core.
    Cva6,
}

impl CoreKind {
    /// All evaluated cores, in the paper's order.
    pub const ALL: [CoreKind; 3] = [CoreKind::Rocket, CoreKind::Boom, CoreKind::Cva6];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoreKind::Rocket => "RocketChip",
            CoreKind::Boom => "Boom",
            CoreKind::Cva6 => "CVA6",
        }
    }
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
