//! Pipeline-level micro-architecture models: hazard tracking, branch
//! prediction and multi-cycle functional units.

/// A 2-bit-saturating-counter branch predictor with a small branch target
/// buffer; the Boom configuration adds global history hashing.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    btb: Vec<Option<u64>>,
    ghr: u64,
    use_history: bool,
}

/// Outcome of consulting the predictor for one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The direction the predictor guessed.
    pub predicted_taken: bool,
    /// Whether the guess matched reality (no flush needed).
    pub correct: bool,
    /// Whether the target buffer held the (correct) target.
    pub btb_hit: bool,
    /// The 2-bit counter state after the update (0 = strongly not-taken …
    /// 3 = strongly taken) — an FSM whose states are coverage points.
    pub counter_after: u8,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters (must be a power of two).
    ///
    /// # Panics
    /// Panics unless `entries` is a power of two.
    #[must_use]
    pub fn new(entries: usize, use_history: bool) -> BranchPredictor {
        assert!(entries.is_power_of_two());
        BranchPredictor {
            counters: vec![1; entries], // weakly not-taken
            btb: vec![None; entries],
            ghr: 0,
            use_history,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let base = (pc >> 2) as usize;
        let idx = if self.use_history {
            base ^ (self.ghr as usize)
        } else {
            base
        };
        idx & (self.counters.len() - 1)
    }

    /// Consults and updates the predictor for a resolved branch.
    pub fn resolve(&mut self, pc: u64, taken: bool, target: u64) -> Prediction {
        let idx = self.index(pc);
        let predicted_taken = self.counters[idx] >= 2;
        let btb_hit = self.btb[idx] == Some(target);
        let correct = predicted_taken == taken && (!taken || btb_hit);
        // Update state.
        if taken {
            self.counters[idx] = (self.counters[idx] + 1).min(3);
            self.btb[idx] = Some(target);
        } else {
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
        Prediction {
            predicted_taken,
            correct,
            btb_hit,
            counter_after: self.counters[idx],
        }
    }

    /// Returns the predictor to its power-on state without reallocating
    /// its tables, so a long-lived DUT can be reused across test cases.
    pub fn reset(&mut self) {
        self.counters.fill(1); // weakly not-taken
        self.btb.fill(None);
        self.ghr = 0;
    }
}

/// Scoreboard entry for hazard detection.
#[derive(Debug, Clone, Copy, Default)]
struct WriterSlot {
    reg: u8,
    is_fp: bool,
    is_load: bool,
    valid: bool,
}

/// Data hazards detected between an instruction and its predecessors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hazards {
    /// Read-after-write against the immediately preceding instruction
    /// (EX→EX forwarding path).
    pub raw_dist1: bool,
    /// Read-after-write at distance two (MEM→EX forwarding path).
    pub raw_dist2: bool,
    /// The producer at distance one was a load (load-use stall).
    pub load_use: bool,
    /// Write-after-write against an in-flight producer.
    pub waw: bool,
}

/// Tracks recent register writers to classify hazards — the forwarding /
/// interlock conditions that dominate RTL condition coverage in the
/// execute stage.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    slots: [WriterSlot; 2],
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    #[must_use]
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Classifies hazards for an instruction reading `reads` (register,
    /// `is_fp`) and writing `write`, then retires it into the scoreboard.
    pub fn step(
        &mut self,
        reads: &[(u8, bool)],
        write: Option<(u8, bool)>,
        is_load: bool,
    ) -> Hazards {
        let mut hz = Hazards::default();
        for &(reg, fp) in reads {
            if reg == 0 && !fp {
                continue; // x0 never hazards
            }
            let s1 = self.slots[0];
            if s1.valid && s1.reg == reg && s1.is_fp == fp {
                hz.raw_dist1 = true;
                if s1.is_load {
                    hz.load_use = true;
                }
            }
            let s2 = self.slots[1];
            if s2.valid && s2.reg == reg && s2.is_fp == fp {
                hz.raw_dist2 = true;
            }
        }
        if let Some((reg, fp)) = write {
            if reg != 0 || fp {
                for s in &self.slots {
                    if s.valid && s.reg == reg && s.is_fp == fp {
                        hz.waw = true;
                    }
                }
            }
        }
        // Shift the pipeline window.
        self.slots[1] = self.slots[0];
        self.slots[0] = match write {
            Some((reg, fp)) if reg != 0 || fp => WriterSlot {
                reg,
                is_fp: fp,
                is_load,
                valid: true,
            },
            _ => WriterSlot::default(),
        };
        hz
    }
}

/// A multi-cycle functional unit (divider, FP pipes) with an occupancy FSM.
#[derive(Debug, Clone, Default)]
pub struct MultiCycleUnit {
    busy_until: u64,
    /// Number of times an issue found the unit busy (structural hazard).
    pub structural_stalls: u64,
}

/// What happened when an operation was issued to a [`MultiCycleUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueEvent {
    /// The unit was idle and accepted the operation.
    Accepted,
    /// The unit was busy; the pipeline stalled until it drained.
    StalledThenAccepted,
}

impl MultiCycleUnit {
    /// Creates an idle unit.
    #[must_use]
    pub fn new() -> MultiCycleUnit {
        MultiCycleUnit::default()
    }

    /// Issues an operation at time `now` lasting `latency` cycles; returns
    /// the issue event and the completion time.
    pub fn issue(&mut self, now: u64, latency: u64) -> (IssueEvent, u64) {
        if now < self.busy_until {
            self.structural_stalls += 1;
            let start = self.busy_until;
            self.busy_until = start + latency;
            (IssueEvent::StalledThenAccepted, self.busy_until)
        } else {
            self.busy_until = now + latency;
            (IssueEvent::Accepted, self.busy_until)
        }
    }

    /// Whether the unit is busy at time `now`.
    #[must_use]
    pub fn is_busy(&self, now: u64) -> bool {
        now < self.busy_until
    }
}

/// Operand-dependent latency of an integer divide (early-out divider, like
/// Rocket's): proportional to the magnitude of the dividend.
#[must_use]
pub fn div_latency(dividend: u64) -> u64 {
    4 + u64::from(64 - dividend.leading_zeros()) / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_loop() {
        let mut bp = BranchPredictor::new(64, false);
        let pc = 0x8000_0100;
        // First resolutions are wrong (cold counters + empty BTB)...
        let p = bp.resolve(pc, true, 0x8000_0080);
        assert!(!p.correct);
        bp.resolve(pc, true, 0x8000_0080);
        // ...then the predictor locks on.
        let p = bp.resolve(pc, true, 0x8000_0080);
        assert!(p.correct && p.btb_hit && p.predicted_taken);
    }

    #[test]
    fn predictor_tracks_not_taken() {
        let mut bp = BranchPredictor::new(64, false);
        let pc = 0x8000_0200;
        bp.resolve(pc, false, 0);
        let p = bp.resolve(pc, false, 0);
        assert!(p.correct && !p.predicted_taken);
    }

    #[test]
    fn btb_miss_counts_as_mispredict_when_taken() {
        let mut bp = BranchPredictor::new(64, false);
        let pc = 0x8000_0300;
        bp.resolve(pc, true, 0x8000_0000);
        bp.resolve(pc, true, 0x8000_0000);
        // Direction predicted taken, but the target changed: BTB miss.
        let p = bp.resolve(pc, true, 0x8000_0040);
        assert!(p.predicted_taken && !p.btb_hit && !p.correct);
    }

    #[test]
    fn history_changes_indexing() {
        let mut a = BranchPredictor::new(64, true);
        let mut b = BranchPredictor::new(64, true);
        // Different histories, same pc: predictions may diverge after
        // different warm-ups (the property we need is just that ghr is used).
        for _ in 0..8 {
            a.resolve(0x8000_0400, true, 0x8000_0000);
            b.resolve(0x8000_0500, false, 0);
        }
        let pa = a.resolve(0x8000_0600, true, 0x8000_0000);
        let pb = b.resolve(0x8000_0600, true, 0x8000_0000);
        // Both were cold at that slot in their own index space; at minimum
        // the calls must be well-formed and deterministic.
        assert!(!pa.correct || !pb.correct || pa == pb);
    }

    #[test]
    fn scoreboard_detects_raw_and_load_use() {
        let mut sb = Scoreboard::new();
        // i0: ld x5 <- ...
        let h = sb.step(&[(6, false)], Some((5, false)), true);
        assert_eq!(h, Hazards::default());
        // i1: add x7 <- x5, x1  (load-use at distance 1)
        let h = sb.step(&[(5, false), (1, false)], Some((7, false)), false);
        assert!(h.raw_dist1 && h.load_use && !h.raw_dist2);
        // i2: add x8 <- x5, x7 (x5 now at distance 2, x7 at distance 1)
        let h = sb.step(&[(5, false), (7, false)], Some((8, false)), false);
        assert!(h.raw_dist1 && h.raw_dist2 && !h.load_use);
    }

    #[test]
    fn scoreboard_ignores_x0_and_separates_banks() {
        let mut sb = Scoreboard::new();
        sb.step(&[], Some((0, false)), false); // write to x0: not tracked
        let h = sb.step(&[(0, false)], Some((1, false)), false);
        assert!(!h.raw_dist1);
        // f0 is a real register (unlike x0).
        sb.step(&[], Some((0, true)), false);
        let h = sb.step(&[(0, true)], None, false);
        assert!(h.raw_dist1, "f0 hazards are real");
        // Integer x3 does not alias fp f3.
        let mut sb = Scoreboard::new();
        sb.step(&[], Some((3, false)), false);
        let h = sb.step(&[(3, true)], None, false);
        assert!(!h.raw_dist1);
    }

    #[test]
    fn waw_detection() {
        let mut sb = Scoreboard::new();
        sb.step(&[], Some((9, false)), false);
        let h = sb.step(&[], Some((9, false)), false);
        assert!(h.waw);
    }

    #[test]
    fn multicycle_unit_stalls_when_busy() {
        let mut div = MultiCycleUnit::new();
        let (e1, done1) = div.issue(10, 8);
        assert_eq!(e1, IssueEvent::Accepted);
        assert_eq!(done1, 18);
        assert!(div.is_busy(17));
        assert!(!div.is_busy(18));
        let (e2, done2) = div.issue(12, 8);
        assert_eq!(e2, IssueEvent::StalledThenAccepted);
        assert_eq!(done2, 26);
        assert_eq!(div.structural_stalls, 1);
    }

    #[test]
    fn div_latency_scales_with_magnitude() {
        assert!(div_latency(0) < div_latency(u64::MAX));
        assert_eq!(div_latency(0), 4);
        assert_eq!(div_latency(u64::MAX), 12);
    }
}
