//! The per-job broadcast hub: one bounded ring of JSONL event lines,
//! fanned out to any number of SSE subscribers.
//!
//! The publisher (the job's worker thread) appends lines; each
//! subscriber holds only a cursor (a sequence number), so a slow or
//! stalled client never blocks the publisher or other subscribers.
//! When the ring wraps past a subscriber's cursor the overwritten lines
//! are gone — the subscriber's next read reports exactly how many lines
//! it missed ([`Recv::Lagged`]) and resumes from the oldest retained
//! line. Fast subscribers therefore see the stream bit-identical to the
//! job's `events.jsonl`; slow ones get explicit drop accounting instead
//! of silent gaps or unbounded buffering.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a subscriber read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// The next line, with its absolute sequence number (0-based).
    Line {
        /// Position of this line in the full stream.
        seq: u64,
        /// The JSONL event line (no trailing newline).
        line: Arc<str>,
    },
    /// The ring overwrote `missed` lines this subscriber never saw; the
    /// cursor has been advanced to the oldest retained line.
    Lagged {
        /// How many lines were dropped for this subscriber.
        missed: u64,
    },
    /// The stream ended (job finished and the hub was closed); no more
    /// lines will ever arrive.
    Closed,
    /// Nothing new within the timeout; poll again.
    TimedOut,
}

#[derive(Debug)]
struct HubState {
    /// Retained lines; `ring[0]` has sequence number `base`.
    ring: VecDeque<Arc<str>>,
    /// Sequence number of the oldest retained line.
    base: u64,
    /// Sequence number the next published line will get.
    next: u64,
    closed: bool,
}

/// Bounded multi-subscriber broadcast ring (see the module docs).
#[derive(Debug)]
pub struct EventHub {
    state: Mutex<HubState>,
    cond: Condvar,
    capacity: usize,
}

impl EventHub {
    /// A hub retaining at most `capacity` lines (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> EventHub {
        EventHub {
            state: Mutex::new(HubState {
                ring: VecDeque::new(),
                base: 0,
                next: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Appends one line, evicting the oldest when full. No-op after
    /// [`EventHub::close`].
    pub fn publish(&self, line: &str) {
        let mut state = self.state.lock().expect("hub lock");
        if state.closed {
            return;
        }
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
            state.base += 1;
        }
        state.ring.push_back(Arc::from(line));
        state.next += 1;
        self.cond.notify_all();
    }

    /// Marks the stream complete; subscribers drain what is retained and
    /// then read [`Recv::Closed`].
    pub fn close(&self) {
        let mut state = self.state.lock().expect("hub lock");
        state.closed = true;
        self.cond.notify_all();
    }

    /// Whether the stream has ended.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("hub lock").closed
    }

    /// Total lines ever published.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.state.lock().expect("hub lock").next
    }

    /// A subscriber starting at the oldest retained line (for a freshly
    /// started job that is sequence 0, i.e. full replay).
    #[must_use]
    pub fn subscribe(self: &Arc<EventHub>) -> Subscriber {
        let cursor = self.state.lock().expect("hub lock").base;
        Subscriber {
            hub: Arc::clone(self),
            cursor,
            dropped: 0,
        }
    }

    /// A subscriber starting at the current tail (live tail only, no
    /// replay).
    #[must_use]
    pub fn subscribe_tail(self: &Arc<EventHub>) -> Subscriber {
        let cursor = self.state.lock().expect("hub lock").next;
        Subscriber {
            hub: Arc::clone(self),
            cursor,
            dropped: 0,
        }
    }
}

/// One subscriber's cursor into an [`EventHub`].
#[derive(Debug)]
pub struct Subscriber {
    hub: Arc<EventHub>,
    cursor: u64,
    dropped: u64,
}

impl Subscriber {
    /// Blocks up to `timeout` for the next line. Never blocks the
    /// publisher; a lagging cursor yields [`Recv::Lagged`] once per gap.
    pub fn next(&mut self, timeout: Duration) -> Recv {
        let mut state = self.hub.state.lock().expect("hub lock");
        loop {
            if self.cursor < state.base {
                let missed = state.base - self.cursor;
                self.cursor = state.base;
                self.dropped += missed;
                return Recv::Lagged { missed };
            }
            if self.cursor < state.next {
                let index = (self.cursor - state.base) as usize;
                let line = Arc::clone(&state.ring[index]);
                let seq = self.cursor;
                self.cursor += 1;
                return Recv::Line { seq, line };
            }
            if state.closed {
                return Recv::Closed;
            }
            let (next_state, result) = self
                .hub
                .cond
                .wait_timeout(state, timeout)
                .expect("hub lock");
            state = next_state;
            if result.timed_out() && self.cursor >= state.next && !state.closed {
                return Recv::TimedOut;
            }
        }
    }

    /// Total lines this subscriber has missed across all lag events.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(10);

    #[test]
    fn delivers_in_order_and_reports_close() {
        let hub = Arc::new(EventHub::new(16));
        let mut sub = hub.subscribe();
        hub.publish("a");
        hub.publish("b");
        hub.close();
        assert!(matches!(sub.next(TICK), Recv::Line { seq: 0, ref line } if &**line == "a"));
        assert!(matches!(sub.next(TICK), Recv::Line { seq: 1, ref line } if &**line == "b"));
        assert_eq!(sub.next(TICK), Recv::Closed);
        assert_eq!(sub.next(TICK), Recv::Closed, "closed is terminal");
    }

    #[test]
    fn slow_subscriber_sees_explicit_lag() {
        let hub = Arc::new(EventHub::new(2));
        let mut sub = hub.subscribe();
        for i in 0..5 {
            hub.publish(&format!("line-{i}"));
        }
        // Ring holds only lines 3 and 4; the first read reports the gap.
        assert_eq!(sub.next(TICK), Recv::Lagged { missed: 3 });
        assert!(matches!(sub.next(TICK), Recv::Line { seq: 3, .. }));
        assert!(matches!(sub.next(TICK), Recv::Line { seq: 4, .. }));
        assert_eq!(sub.next(TICK), Recv::TimedOut);
        assert_eq!(sub.total_dropped(), 3);
    }

    #[test]
    fn tail_subscription_skips_history() {
        let hub = Arc::new(EventHub::new(8));
        hub.publish("old");
        let mut sub = hub.subscribe_tail();
        hub.publish("new");
        assert!(matches!(sub.next(TICK), Recv::Line { seq: 1, ref line } if &**line == "new"));
    }

    #[test]
    fn concurrent_subscribers_each_get_the_full_stream() {
        let hub = Arc::new(EventHub::new(1024));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let mut sub = hub.subscribe();
            readers.push(std::thread::spawn(move || {
                let mut lines = Vec::new();
                loop {
                    match sub.next(Duration::from_secs(5)) {
                        Recv::Line { line, .. } => lines.push(line.to_string()),
                        Recv::Closed => return lines,
                        Recv::Lagged { .. } => panic!("capacity is ample"),
                        Recv::TimedOut => panic!("publisher stalled"),
                    }
                }
            }));
        }
        let expect: Vec<String> = (0..100).map(|i| format!("l{i}")).collect();
        for line in &expect {
            hub.publish(line);
        }
        hub.close();
        for reader in readers {
            assert_eq!(reader.join().expect("reader"), expect);
        }
    }
}
