//! Job specs, the job table, and the worker pool that executes them.
//!
//! A [`JobSpec`] is the serializable description of one campaign or
//! fleet run — the same flat-JSON dialect as the telemetry schema
//! (`hfl::json`), POSTed to `/jobs` and persisted per job as
//! `spec.json`. The [`JobTable`] owns every submitted job: a bounded
//! worker pool drains the queue, each running job streams its JSONL
//! events both to `events.jsonl` on disk and to an in-memory
//! [`EventHub`] for SSE subscribers, and a [`StopHandle`] per job wires
//! the cancel / checkpoint-now / drain endpoints to the runner's
//! round-boundary control points.
//!
//! On SIGTERM the daemon calls [`JobTable::drain`]: every running job
//! stops at its next boundary (writing a final snapshot via its
//! [`CheckpointPolicy`]), and [`JobTable::save_state`] records all jobs
//! in `state.jsonl` so a restarted daemon re-queues interrupted and
//! pending jobs — resumed runs append to `events.jsonl`, keeping the
//! concatenated stream bit-identical to an uninterrupted run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hfl::baselines::{CascadeFuzzer, DifuzzRtlFuzzer, Fuzzer, TheHuzzFuzzer};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, CheckpointPolicy, RunConfig};
use hfl::fleet::{run_fleet, FleetConfig, FleetMember, FleetSpec};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl::json::{Fields, ObjectWriter};
use hfl::obs::{Event, EventSink, JsonlSink, SinkHandle};
use hfl::StopHandle;
use hfl_dut::CoreKind;

use crate::hub::EventHub;

/// Events retained per job for late SSE subscribers. Small campaigns
/// fit entirely, so subscribing after completion still replays the full
/// stream; beyond this, subscribers get explicit lag accounting.
pub const DEFAULT_HUB_CAPACITY: usize = 64 * 1024;

/// The serializable description of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A single-fuzzer campaign (`hfl::campaign::run_campaign`).
    Campaign(CampaignJob),
    /// A multi-member fleet (`hfl::fleet::run_fleet`).
    Fleet(FleetJob),
}

/// Spec fields for a campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJob {
    /// Fuzzer name: `hfl`, `difuzz`, `thehuzz` or `cascade`.
    pub fuzzer: String,
    /// The fuzzer's RNG seed.
    pub seed: u64,
    /// The core to fuzz.
    pub core: CoreKind,
    /// Total case budget.
    pub cases: u64,
    /// Coverage-curve sampling stride (cases).
    pub sample_every: u64,
    /// Shared execution knobs (threads never affect outputs).
    pub run: RunConfig,
    /// Snapshot every this many rounds.
    pub checkpoint_every: u64,
}

/// Spec fields for a fleet job.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetJob {
    /// `(fuzzer, seed)` members, as in `--members difuzz:5,thehuzz:9`.
    pub members: Vec<(String, u64)>,
    /// The core every member fuzzes.
    pub core: CoreKind,
    /// Number of epochs.
    pub epochs: u64,
    /// Fleet-wide case budget per epoch.
    pub cases_per_epoch: u64,
    /// Shared execution knobs.
    pub run: RunConfig,
    /// Snapshot every this many epochs.
    pub checkpoint_every: u64,
}

fn core_name(core: CoreKind) -> &'static str {
    match core {
        CoreKind::Rocket => "rocket",
        CoreKind::Boom => "boom",
        CoreKind::Cva6 => "cva6",
    }
}

fn parse_core(name: &str) -> Result<CoreKind, String> {
    match name {
        "rocket" => Ok(CoreKind::Rocket),
        "boom" => Ok(CoreKind::Boom),
        "cva6" => Ok(CoreKind::Cva6),
        other => Err(format!("unknown core {other:?}")),
    }
}

/// The fuzzer-construction convention shared with the bench binaries:
/// small models sized for CI.
pub fn make_fuzzer(name: &str, seed: u64) -> Result<Box<dyn Fuzzer>, String> {
    match name {
        "difuzz" => Ok(Box::new(DifuzzRtlFuzzer::new(seed, 16))),
        "thehuzz" => Ok(Box::new(TheHuzzFuzzer::new(seed, 16))),
        "cascade" => Ok(Box::new(CascadeFuzzer::new(seed, 60))),
        "hfl" => {
            let mut cfg = HflConfig::small().with_seed(seed);
            cfg.generator.hidden = 16;
            cfg.predictor.hidden = 16;
            cfg.test_len = 6;
            Ok(Box::new(HflFuzzer::new(cfg)))
        }
        other => Err(format!("unknown fuzzer {other:?}")),
    }
}

impl JobSpec {
    /// `"campaign"` or `"fleet"`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Campaign(_) => "campaign",
            JobSpec::Fleet(_) => "fleet",
        }
    }

    /// Serialises the spec as one flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::with_type("job_spec");
        w.str("kind", self.kind());
        match self {
            JobSpec::Campaign(job) => {
                w.str("fuzzer", &job.fuzzer);
                w.num("seed", job.seed);
                w.str("core", core_name(job.core));
                w.num("cases", job.cases);
                w.num("sample_every", job.sample_every);
                w.num("max_steps", job.run.max_steps);
                w.num("batch", job.run.batch as u64);
                w.num("threads", job.run.threads as u64);
                w.num("checkpoint_every", job.checkpoint_every);
            }
            JobSpec::Fleet(job) => {
                let members: Vec<String> = job
                    .members
                    .iter()
                    .map(|(name, seed)| format!("{name}:{seed}"))
                    .collect();
                w.str("members", &members.join(","));
                w.str("core", core_name(job.core));
                w.num("epochs", job.epochs);
                w.num("cases_per_epoch", job.cases_per_epoch);
                w.num("max_steps", job.run.max_steps);
                w.num("batch", job.run.batch as u64);
                w.num("threads", job.run.threads as u64);
                w.num("checkpoint_every", job.checkpoint_every);
            }
        }
        w.finish()
    }

    /// Parses and validates a spec document. Every error message names
    /// the offending field — these become HTTP 400 bodies.
    pub fn from_json(line: &str) -> Result<JobSpec, String> {
        let fields = Fields::parse(line).ok_or("body is not a flat JSON object")?;
        if fields.str("type") != Some("job_spec") {
            return Err(String::from("\"type\" must be \"job_spec\""));
        }
        let core = parse_core(fields.str("core").unwrap_or("rocket"))?;
        let run = RunConfig::quick()
            .with_max_steps(fields.u64("max_steps").unwrap_or(3_000))
            .with_batch(fields.usize("batch").unwrap_or(1))
            .with_threads(fields.usize("threads").unwrap_or(1));
        run.validate().map_err(|e| e.to_string())?;
        let checkpoint_every = fields.u64("checkpoint_every").unwrap_or(1).max(1);
        match fields.str("kind") {
            Some("campaign") => {
                let fuzzer = fields
                    .str("fuzzer")
                    .ok_or("campaign spec needs \"fuzzer\"")?
                    .to_owned();
                make_fuzzer(&fuzzer, 0)?;
                let cases = fields.u64("cases").ok_or("campaign spec needs \"cases\"")?;
                if cases == 0 {
                    return Err(String::from("\"cases\" must be positive"));
                }
                Ok(JobSpec::Campaign(CampaignJob {
                    fuzzer,
                    seed: fields.u64("seed").unwrap_or(1),
                    core,
                    cases,
                    sample_every: fields.u64("sample_every").unwrap_or(cases).max(1),
                    run,
                    checkpoint_every,
                }))
            }
            Some("fleet") => {
                let members_spec = fields
                    .str("members")
                    .ok_or("fleet spec needs \"members\"")?;
                let mut members = Vec::new();
                for pair in members_spec.split(',') {
                    let (name, seed) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("member {pair:?} is not fuzzer:seed"))?;
                    let seed: u64 = seed
                        .parse()
                        .map_err(|_| format!("member seed {seed:?} is not a number"))?;
                    make_fuzzer(name, 0)?;
                    members.push((name.to_owned(), seed));
                }
                if members.is_empty() {
                    return Err(String::from("\"members\" is empty"));
                }
                let epochs = fields.u64("epochs").ok_or("fleet spec needs \"epochs\"")?;
                let cases_per_epoch = fields
                    .u64("cases_per_epoch")
                    .ok_or("fleet spec needs \"cases_per_epoch\"")?;
                if epochs == 0 || cases_per_epoch == 0 {
                    return Err(String::from(
                        "\"epochs\" and \"cases_per_epoch\" must be positive",
                    ));
                }
                Ok(JobSpec::Fleet(FleetJob {
                    members,
                    core,
                    epochs,
                    cases_per_epoch,
                    run,
                    checkpoint_every,
                }))
            }
            Some(other) => Err(format!("unknown job kind {other:?}")),
            None => Err(String::from("spec needs \"kind\"")),
        }
    }
}

/// Lifecycle of a job. Linear except that queued jobs can be cancelled
/// directly and any non-terminal job becomes `Interrupted` by a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Ran its full budget.
    Done,
    /// The runner returned an error (message on the job record).
    Failed,
    /// Stopped early by `/cancel`.
    Cancelled,
    /// Stopped early by a daemon drain; resumable from its snapshot.
    Interrupted,
}

impl JobStatus {
    /// Wire name of the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Interrupted => "interrupted",
        }
    }

    fn parse(name: &str) -> Option<JobStatus> {
        Some(match name {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed,
            "cancelled" => JobStatus::Cancelled,
            "interrupted" => JobStatus::Interrupted,
            _ => return None,
        })
    }

    /// Whether the job will never run again (short of a resubmit).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// Final coverage accounting copied off the runner's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Whether the full budget ran.
    pub completed: bool,
    /// Final condition-coverage points.
    pub condition: usize,
    /// Final line-coverage points.
    pub line: usize,
    /// Final FSM-coverage points.
    pub fsm: usize,
    /// Unique mismatch signatures.
    pub unique_signatures: usize,
}

struct Job {
    id: u64,
    spec: JobSpec,
    status: JobStatus,
    resume: bool,
    cancel_requested: bool,
    error: Option<String>,
    summary: Option<JobSummary>,
    control: StopHandle,
    hub: Arc<EventHub>,
}

/// A read-only snapshot of one job for status endpoints.
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job's id (assigned at submit, stable across restarts).
    pub id: u64,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Whether this run resumed from a snapshot.
    pub resume: bool,
    /// The runner's error, if the job failed.
    pub error: Option<String>,
    /// Final accounting, once the job stopped.
    pub summary: Option<JobSummary>,
    /// Events published to the job's hub so far.
    pub events: u64,
}

impl JobView {
    /// Serialises the view as the `/jobs/<id>` status document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::with_type("job");
        w.num("id", self.id);
        w.str("kind", self.spec.kind());
        w.str("status", self.status.as_str());
        w.bool("resume", self.resume);
        w.num("events", self.events);
        if let Some(error) = &self.error {
            w.str("error", error);
        }
        if let Some(s) = &self.summary {
            w.bool("completed", s.completed);
            w.num("condition", s.condition as u64);
            w.num("line", s.line as u64);
            w.num("fsm", s.fsm as u64);
            w.num("unique_signatures", s.unique_signatures as u64);
        }
        w.finish()
    }
}

struct TableState {
    jobs: Vec<Job>,
    next_id: u64,
    draining: bool,
}

/// The daemon's job registry and work queue (see the module docs).
pub struct JobTable {
    data_dir: PathBuf,
    hub_capacity: usize,
    state: Mutex<TableState>,
    cond: Condvar,
}

impl JobTable {
    /// Opens (or creates) `data_dir` and re-queues whatever a previous
    /// daemon recorded in `state.jsonl`: terminal jobs are listed as-is
    /// (their hubs replay `events.jsonl`), queued and interrupted jobs
    /// go back on the queue, resuming from their latest snapshot.
    pub fn open(data_dir: impl Into<PathBuf>, hub_capacity: usize) -> io::Result<JobTable> {
        let data_dir = data_dir.into();
        fs::create_dir_all(&data_dir)?;
        let table = JobTable {
            data_dir,
            hub_capacity: hub_capacity.max(1),
            state: Mutex::new(TableState {
                jobs: Vec::new(),
                next_id: 1,
                draining: false,
            }),
            cond: Condvar::new(),
        };
        table.load_state()?;
        Ok(table)
    }

    /// The directory holding one job's artifacts.
    #[must_use]
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.data_dir.join(format!("job-{id}"))
    }

    /// The job's JSONL event log.
    #[must_use]
    pub fn events_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("events.jsonl")
    }

    /// The job's checkpoint directory.
    #[must_use]
    pub fn checkpoint_dir(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("ckpt")
    }

    /// Accepts a validated spec: assigns an id, persists `spec.json`,
    /// and queues it for the next free worker.
    pub fn submit(&self, spec: JobSpec) -> io::Result<u64> {
        let mut state = self.state.lock().expect("table lock");
        let id = state.next_id;
        state.next_id += 1;
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("spec.json"), format!("{}\n", spec.to_json()))?;
        state.jobs.push(Job {
            id,
            spec,
            status: JobStatus::Queued,
            resume: false,
            cancel_requested: false,
            error: None,
            summary: None,
            control: StopHandle::new(),
            hub: Arc::new(EventHub::new(self.hub_capacity)),
        });
        drop(state);
        self.cond.notify_all();
        Ok(id)
    }

    /// Snapshots of all jobs, id order.
    #[must_use]
    pub fn list(&self) -> Vec<JobView> {
        let state = self.state.lock().expect("table lock");
        state.jobs.iter().map(view).collect()
    }

    /// Snapshot of one job.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<JobView> {
        let state = self.state.lock().expect("table lock");
        state.jobs.iter().find(|j| j.id == id).map(view)
    }

    /// The job's event hub (for SSE subscription).
    #[must_use]
    pub fn hub(&self, id: u64) -> Option<Arc<EventHub>> {
        let state = self.state.lock().expect("table lock");
        state
            .jobs
            .iter()
            .find(|j| j.id == id)
            .map(|j| Arc::clone(&j.hub))
    }

    /// Cancels a job: queued jobs terminate immediately, running jobs
    /// stop at their next round/epoch boundary. Terminal jobs error.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let mut state = self.state.lock().expect("table lock");
        let job = state
            .jobs
            .iter_mut()
            .find(|j| j.id == id)
            .ok_or_else(|| format!("no job {id}"))?;
        match job.status {
            JobStatus::Queued => {
                job.status = JobStatus::Cancelled;
                job.hub.close();
                Ok(JobStatus::Cancelled)
            }
            JobStatus::Running => {
                job.cancel_requested = true;
                job.control.request_stop();
                Ok(JobStatus::Running)
            }
            terminal => Err(format!("job {id} is already {}", terminal.as_str())),
        }
    }

    /// Requests one snapshot of a running job at its next boundary.
    pub fn checkpoint_now(&self, id: u64) -> Result<(), String> {
        let state = self.state.lock().expect("table lock");
        let job = state
            .jobs
            .iter()
            .find(|j| j.id == id)
            .ok_or_else(|| format!("no job {id}"))?;
        if job.status != JobStatus::Running {
            return Err(format!("job {id} is {}, not running", job.status.as_str()));
        }
        job.control.request_checkpoint();
        Ok(())
    }

    /// Worker-thread main loop: claim queued jobs until a drain starts,
    /// then return once the queue holds no more runnable work.
    pub fn worker_loop(&self) {
        loop {
            let claimed = {
                let mut state = self.state.lock().expect("table lock");
                loop {
                    if state.draining {
                        return;
                    }
                    if let Some(job) = state
                        .jobs
                        .iter_mut()
                        .find(|j| j.status == JobStatus::Queued)
                    {
                        job.status = JobStatus::Running;
                        break Some((
                            job.id,
                            job.spec.clone(),
                            job.resume,
                            job.control.clone(),
                            Arc::clone(&job.hub),
                        ));
                    }
                    let (next, _timeout) = self
                        .cond
                        .wait_timeout(state, Duration::from_millis(200))
                        .expect("table lock");
                    state = next;
                }
            };
            let Some((id, spec, resume, control, hub)) = claimed else {
                return;
            };
            let outcome = run_job(&spec, &self.job_dir(id), resume, &control, &hub);
            hub.close();
            let mut state = self.state.lock().expect("table lock");
            let draining = state.draining;
            if let Some(job) = state.jobs.iter_mut().find(|j| j.id == id) {
                match outcome {
                    Ok(summary) => {
                        job.status = if summary.completed {
                            JobStatus::Done
                        } else if job.cancel_requested {
                            JobStatus::Cancelled
                        } else if draining {
                            JobStatus::Interrupted
                        } else {
                            // Stopped early without a cause we triggered;
                            // the snapshot still allows a resume.
                            JobStatus::Interrupted
                        };
                        job.summary = Some(summary);
                    }
                    Err(err) => {
                        job.status = JobStatus::Failed;
                        job.error = Some(err);
                    }
                }
            }
        }
    }

    /// Starts a graceful drain: stops accepting queue claims and asks
    /// every running job to stop (each writes a final snapshot at its
    /// boundary). Returns once the flag is set; callers join the worker
    /// threads, then call [`JobTable::save_state`].
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("table lock");
        state.draining = true;
        for job in &state.jobs {
            match job.status {
                JobStatus::Running => job.control.request_stop(),
                JobStatus::Queued => job.hub.close(),
                _ => {}
            }
        }
        drop(state);
        self.cond.notify_all();
    }

    /// Whether a drain has started.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.state.lock().expect("table lock").draining
    }

    /// Writes `state.jsonl`: one line per job (id, status, spec), so a
    /// restarted daemon can list finished jobs and re-queue unfinished
    /// ones. Call after the workers have joined.
    pub fn save_state(&self) -> io::Result<()> {
        let state = self.state.lock().expect("table lock");
        let mut out = String::new();
        for job in &state.jobs {
            let mut w = ObjectWriter::with_type("job_state");
            w.num("id", job.id);
            w.str("status", job.status.as_str());
            w.str("spec", &job.spec.to_json());
            out.push_str(&w.finish());
            out.push('\n');
        }
        let tmp = self.data_dir.join("state.jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(tmp, self.data_dir.join("state.jsonl"))
    }

    /// Loads `state.jsonl` (if present) into the table; unfinished jobs
    /// are re-queued with `resume = true`, terminal jobs get their hubs
    /// seeded from `events.jsonl` so late subscribers can still replay.
    fn load_state(&self) -> io::Result<()> {
        let path = self.data_dir.join("state.jsonl");
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut state = self.state.lock().expect("table lock");
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Some(fields) = Fields::parse(line) else {
                continue;
            };
            if fields.str("type") != Some("job_state") {
                continue;
            }
            let (Some(id), Some(status), Some(spec_json)) = (
                fields.u64("id"),
                fields.str("status").and_then(JobStatus::parse),
                fields.str("spec"),
            ) else {
                continue;
            };
            let Ok(spec) = JobSpec::from_json(spec_json) else {
                continue;
            };
            let hub = Arc::new(EventHub::new(self.hub_capacity));
            let (status, resume) = if status.is_terminal() {
                // Replay the finished stream for late subscribers.
                if let Ok(text) = fs::read_to_string(self.events_path(id)) {
                    for event_line in text.lines().filter(|l| !l.is_empty()) {
                        hub.publish(event_line);
                    }
                }
                hub.close();
                (status, false)
            } else {
                (JobStatus::Queued, true)
            };
            state.next_id = state.next_id.max(id + 1);
            state.jobs.push(Job {
                id,
                spec,
                status,
                resume,
                cancel_requested: false,
                error: None,
                summary: None,
                control: StopHandle::new(),
                hub,
            });
        }
        Ok(())
    }
}

fn view(job: &Job) -> JobView {
    JobView {
        id: job.id,
        spec: job.spec.clone(),
        status: job.status,
        resume: job.resume,
        error: job.error.clone(),
        summary: job.summary,
        events: job.hub.published(),
    }
}

/// Streams every event both to the job's `events.jsonl` and to its
/// in-memory hub, so the SSE stream is bit-identical to the file.
struct TeeSink {
    file: JsonlSink,
    hub: Arc<EventHub>,
}

impl EventSink for TeeSink {
    fn emit(&self, event: &Event) {
        self.file.emit(event);
        self.hub.publish(&event.to_json());
    }

    fn flush(&self) {
        self.file.flush();
    }

    fn take_error(&self) -> Option<io::Error> {
        self.file.take_error()
    }
}

/// Executes one job in `dir`, honouring `control` and streaming through
/// `hub`. On resume, replays the existing `events.jsonl` into the hub
/// and appends to it, so both the file and any subscriber's stream stay
/// bit-identical to an uninterrupted run.
fn run_job(
    spec: &JobSpec,
    dir: &Path,
    resume: bool,
    control: &StopHandle,
    hub: &Arc<EventHub>,
) -> Result<JobSummary, String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let ckpt_dir = dir.join("ckpt");
    let events = dir.join("events.jsonl");
    let snapshot = if resume {
        match spec {
            JobSpec::Campaign(_) => CheckpointPolicy::latest_snapshot(&ckpt_dir),
            JobSpec::Fleet(_) => CheckpointPolicy::latest_fleet_snapshot(&ckpt_dir),
        }
    } else {
        None
    };
    let file_sink = if snapshot.is_some() {
        // Seed the hub with the history so subscribers replay the whole
        // stream, then append — the concatenated log stays identical to
        // an uninterrupted run.
        if let Ok(text) = fs::read_to_string(&events) {
            for line in text.lines().filter(|l| !l.is_empty()) {
                hub.publish(line);
            }
        }
        JsonlSink::append(&events).map_err(|e| e.to_string())?
    } else {
        // Fresh start (including "resume" of a job that never reached
        // its first snapshot): truncate so no stale events linger.
        JsonlSink::create(&events).map_err(|e| e.to_string())?
    };
    let sink = SinkHandle::new(Arc::new(TeeSink {
        file: file_sink,
        hub: Arc::clone(hub),
    }));

    match spec {
        JobSpec::Campaign(job) => {
            let config = CampaignConfig {
                cases: job.cases,
                sample_every: job.sample_every,
                run: job.run,
            };
            let mut builder = CampaignSpec::builder(job.core, config)
                .sink(sink)
                .checkpoint(CheckpointPolicy::new(&ckpt_dir, job.checkpoint_every))
                .control(control.clone());
            if let Some(snapshot) = snapshot {
                builder = builder.resume_from(snapshot);
            }
            let spec = builder.build().map_err(|e| e.to_string())?;
            let mut fuzzer = make_fuzzer(&job.fuzzer, job.seed)?;
            let result = run_campaign(fuzzer.as_mut(), &spec).map_err(|e| e.to_string())?;
            let (condition, line, fsm) = result.final_counts();
            Ok(JobSummary {
                completed: result.completed,
                condition,
                line,
                fsm,
                unique_signatures: result.unique_signatures,
            })
        }
        JobSpec::Fleet(job) => {
            let config = FleetConfig {
                epochs: job.epochs,
                cases_per_epoch: job.cases_per_epoch,
                run: job.run,
            };
            let mut builder = FleetSpec::builder(config)
                .sink(sink)
                .checkpoint(CheckpointPolicy::new(&ckpt_dir, job.checkpoint_every))
                .control(control.clone());
            if let Some(snapshot) = snapshot {
                builder = builder.resume_from(snapshot);
            }
            let spec = builder.build().map_err(|e| e.to_string())?;
            let mut members: Vec<FleetMember> = Vec::new();
            for (name, seed) in &job.members {
                let fuzzer = make_fuzzer(name, *seed)?;
                members.push(FleetMember::new(format!("{name}-{seed}"), job.core, fuzzer));
            }
            let result = run_fleet(&mut members, &spec).map_err(|e| e.to_string())?;
            let (condition, line, fsm) = result.final_counts();
            Ok(JobSummary {
                completed: result.completed,
                condition,
                line,
                fsm,
                unique_signatures: result
                    .merged_curve
                    .last()
                    .map_or(0, |s| s.unique_signatures),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        let campaign = JobSpec::Campaign(CampaignJob {
            fuzzer: String::from("difuzz"),
            seed: 7,
            core: CoreKind::Rocket,
            cases: 40,
            sample_every: 10,
            run: RunConfig::quick().with_batch(4).with_threads(2),
            checkpoint_every: 2,
        });
        let fleet = JobSpec::Fleet(FleetJob {
            members: vec![(String::from("difuzz"), 5), (String::from("cascade"), 9)],
            core: CoreKind::Boom,
            epochs: 3,
            cases_per_epoch: 24,
            run: RunConfig::quick(),
            checkpoint_every: 1,
        });
        for spec in [campaign, fleet] {
            let line = spec.to_json();
            assert_eq!(JobSpec::from_json(&line), Ok(spec), "{line}");
        }
    }

    #[test]
    fn invalid_specs_name_the_problem() {
        for (body, needle) in [
            ("nonsense", "flat JSON"),
            (r#"{"type":"other"}"#, "job_spec"),
            (r#"{"type":"job_spec"}"#, "kind"),
            (r#"{"type":"job_spec","kind":"campaign"}"#, "fuzzer"),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"nope","cases":5}"#,
                "unknown fuzzer",
            ),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz"}"#,
                "cases",
            ),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","cases":0}"#,
                "positive",
            ),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","cases":5,"core":"z80"}"#,
                "unknown core",
            ),
            (r#"{"type":"job_spec","kind":"fleet"}"#, "members"),
            (
                r#"{"type":"job_spec","kind":"fleet","members":"difuzz"}"#,
                "fuzzer:seed",
            ),
            (r#"{"type":"job_spec","kind":"warp"}"#, "unknown job kind"),
        ] {
            let err = JobSpec::from_json(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn table_tracks_submit_cancel_and_state_round_trip() {
        let dir = std::env::temp_dir().join(format!("hfl-serve-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let table = JobTable::open(&dir, 64).expect("open");
        let spec = JobSpec::from_json(
            r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","cases":8}"#,
        )
        .expect("valid");
        let id = table.submit(spec.clone()).expect("submit");
        assert_eq!(table.get(id).expect("job").status, JobStatus::Queued);
        assert!(table.checkpoint_now(id).is_err(), "not running yet");
        assert_eq!(table.cancel(id), Ok(JobStatus::Cancelled));
        assert!(table.cancel(id).is_err(), "already terminal");
        let id2 = table.submit(spec).expect("submit");
        table.drain();
        table.save_state().expect("save");

        let reloaded = JobTable::open(&dir, 64).expect("reopen");
        assert_eq!(
            reloaded.get(id).expect("job").status,
            JobStatus::Cancelled,
            "terminal status survives restart"
        );
        let job2 = reloaded.get(id2).expect("job2");
        assert_eq!(job2.status, JobStatus::Queued, "unfinished job re-queues");
        assert!(job2.resume);
        let id3 = reloaded.submit(job2.spec).expect("submit");
        assert!(id3 > id2, "ids stay unique across restarts");
        let _ = fs::remove_dir_all(&dir);
    }
}
