//! Job specs, the job table, and the worker pool that executes them.
//!
//! A [`JobSpec`] is the serializable description of one campaign or
//! fleet run — it *is* [`hfl::spec::RunRequest`], the one job surface
//! shared with the bench binaries, serialised in the same flat-JSON
//! dialect as the telemetry schema (`hfl::json`), POSTed to `/jobs`
//! and persisted per job as `spec.json`. Validation happens once, in
//! [`RunRequest::validate`], during parse. Fleet jobs execute on the
//! distributed runtime ([`hfl::fleet_dist`]): worker processes when
//! the daemon was given a worker binary (`--worker-bin` /
//! `HFL_WORKER_BIN`), protocol-identical worker threads otherwise.
//! The [`JobTable`] owns every submitted job: a bounded
//! worker pool drains the queue, each running job streams its JSONL
//! events both to `events.jsonl` on disk and to an in-memory
//! [`EventHub`] for SSE subscribers, and a [`StopHandle`] per job wires
//! the cancel / checkpoint-now / drain endpoints to the runner's
//! round-boundary control points.
//!
//! On SIGTERM the daemon calls [`JobTable::drain`]: every running job
//! stops at its next boundary (writing a final snapshot via its
//! [`CheckpointPolicy`]), and [`JobTable::save_state`] records all jobs
//! in `state.jsonl` so a restarted daemon re-queues interrupted and
//! pending jobs — resumed runs append to `events.jsonl`, keeping the
//! concatenated stream bit-identical to an uninterrupted run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hfl::baselines::Fuzzer;
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, CheckpointPolicy};
use hfl::fleet::{FleetConfig, FleetSpec};
use hfl::fleet_dist::{
    run_fleet_dist, DistConfig, ProcessLauncher, ThreadLauncher, WorkerLauncher,
};
use hfl::json::{Fields, ObjectWriter};
use hfl::obs::{Event, EventSink, JsonlSink, SinkHandle};
use hfl::spec::FuzzerKind;
use hfl::StopHandle;

use crate::hub::EventHub;

pub use hfl::spec::{CampaignRequest, FleetRequest, MemberSpec, RunRequest};

/// Environment variable naming the `fleet_worker` binary fleet jobs
/// should spawn as worker processes (set by `--worker-bin`). Unset or
/// empty, fleet jobs run protocol-identical worker threads instead.
pub const WORKER_BIN_ENV: &str = "HFL_WORKER_BIN";

/// Events retained per job for late SSE subscribers. Small campaigns
/// fit entirely, so subscribing after completion still replays the full
/// stream; beyond this, subscribers get explicit lag accounting.
pub const DEFAULT_HUB_CAPACITY: usize = 64 * 1024;

/// The serializable description of one job: the crate-spanning
/// [`RunRequest`]. `JobSpec::Campaign` / `JobSpec::Fleet` pattern
/// matches, `kind()`, `to_json()` and `from_json()` all resolve to the
/// shared type — the service adds no spec dialect of its own.
pub type JobSpec = RunRequest;

/// The fuzzer-construction convention shared with the bench binaries
/// (small models sized for CI) — a thin wrapper over
/// [`FuzzerKind::parse`] + [`FuzzerKind::build`], kept for callers that
/// hold the strategy as a string.
pub fn make_fuzzer(name: &str, seed: u64) -> Result<Box<dyn Fuzzer>, String> {
    Ok(FuzzerKind::parse(name)?.build(seed))
}

/// Lifecycle of a job. Linear except that queued jobs can be cancelled
/// directly and any non-terminal job becomes `Interrupted` by a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Ran its full budget.
    Done,
    /// The runner returned an error (message on the job record).
    Failed,
    /// Stopped early by `/cancel`.
    Cancelled,
    /// Stopped early by a daemon drain; resumable from its snapshot.
    Interrupted,
}

impl JobStatus {
    /// Wire name of the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Interrupted => "interrupted",
        }
    }

    fn parse(name: &str) -> Option<JobStatus> {
        Some(match name {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed,
            "cancelled" => JobStatus::Cancelled,
            "interrupted" => JobStatus::Interrupted,
            _ => return None,
        })
    }

    /// Whether the job will never run again (short of a resubmit).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// Final coverage accounting copied off the runner's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Whether the full budget ran.
    pub completed: bool,
    /// Final condition-coverage points.
    pub condition: usize,
    /// Final line-coverage points.
    pub line: usize,
    /// Final FSM-coverage points.
    pub fsm: usize,
    /// Unique mismatch signatures.
    pub unique_signatures: usize,
}

struct Job {
    id: u64,
    spec: JobSpec,
    status: JobStatus,
    resume: bool,
    cancel_requested: bool,
    error: Option<String>,
    summary: Option<JobSummary>,
    control: StopHandle,
    hub: Arc<EventHub>,
}

/// A read-only snapshot of one job for status endpoints.
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job's id (assigned at submit, stable across restarts).
    pub id: u64,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Whether this run resumed from a snapshot.
    pub resume: bool,
    /// The runner's error, if the job failed.
    pub error: Option<String>,
    /// Final accounting, once the job stopped.
    pub summary: Option<JobSummary>,
    /// Events published to the job's hub so far.
    pub events: u64,
}

impl JobView {
    /// Serialises the view as the `/jobs/<id>` status document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::with_type("job");
        w.num("id", self.id);
        w.str("kind", self.spec.kind());
        w.str("status", self.status.as_str());
        w.bool("resume", self.resume);
        w.num("events", self.events);
        if let Some(error) = &self.error {
            w.str("error", error);
        }
        if let Some(s) = &self.summary {
            w.bool("completed", s.completed);
            w.num("condition", s.condition as u64);
            w.num("line", s.line as u64);
            w.num("fsm", s.fsm as u64);
            w.num("unique_signatures", s.unique_signatures as u64);
        }
        w.finish()
    }
}

struct TableState {
    jobs: Vec<Job>,
    next_id: u64,
    draining: bool,
}

/// The daemon's job registry and work queue (see the module docs).
pub struct JobTable {
    data_dir: PathBuf,
    hub_capacity: usize,
    state: Mutex<TableState>,
    cond: Condvar,
}

impl JobTable {
    /// Opens (or creates) `data_dir` and re-queues whatever a previous
    /// daemon recorded in `state.jsonl`: terminal jobs are listed as-is
    /// (their hubs replay `events.jsonl`), queued and interrupted jobs
    /// go back on the queue, resuming from their latest snapshot.
    pub fn open(data_dir: impl Into<PathBuf>, hub_capacity: usize) -> io::Result<JobTable> {
        let data_dir = data_dir.into();
        fs::create_dir_all(&data_dir)?;
        let table = JobTable {
            data_dir,
            hub_capacity: hub_capacity.max(1),
            state: Mutex::new(TableState {
                jobs: Vec::new(),
                next_id: 1,
                draining: false,
            }),
            cond: Condvar::new(),
        };
        table.load_state()?;
        Ok(table)
    }

    /// The directory holding one job's artifacts.
    #[must_use]
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.data_dir.join(format!("job-{id}"))
    }

    /// The job's JSONL event log.
    #[must_use]
    pub fn events_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("events.jsonl")
    }

    /// The job's checkpoint directory.
    #[must_use]
    pub fn checkpoint_dir(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("ckpt")
    }

    /// Accepts a validated spec: assigns an id, persists `spec.json`,
    /// and queues it for the next free worker.
    pub fn submit(&self, spec: JobSpec) -> io::Result<u64> {
        let mut state = self.state.lock().expect("table lock");
        let id = state.next_id;
        state.next_id += 1;
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("spec.json"), format!("{}\n", spec.to_json()))?;
        state.jobs.push(Job {
            id,
            spec,
            status: JobStatus::Queued,
            resume: false,
            cancel_requested: false,
            error: None,
            summary: None,
            control: StopHandle::new(),
            hub: Arc::new(EventHub::new(self.hub_capacity)),
        });
        drop(state);
        self.cond.notify_all();
        Ok(id)
    }

    /// Snapshots of all jobs, id order.
    #[must_use]
    pub fn list(&self) -> Vec<JobView> {
        let state = self.state.lock().expect("table lock");
        state.jobs.iter().map(view).collect()
    }

    /// Snapshot of one job.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<JobView> {
        let state = self.state.lock().expect("table lock");
        state.jobs.iter().find(|j| j.id == id).map(view)
    }

    /// The job's event hub (for SSE subscription).
    #[must_use]
    pub fn hub(&self, id: u64) -> Option<Arc<EventHub>> {
        let state = self.state.lock().expect("table lock");
        state
            .jobs
            .iter()
            .find(|j| j.id == id)
            .map(|j| Arc::clone(&j.hub))
    }

    /// Cancels a job: queued jobs terminate immediately, running jobs
    /// stop at their next round/epoch boundary. Terminal jobs error.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let mut state = self.state.lock().expect("table lock");
        let job = state
            .jobs
            .iter_mut()
            .find(|j| j.id == id)
            .ok_or_else(|| format!("no job {id}"))?;
        match job.status {
            JobStatus::Queued => {
                job.status = JobStatus::Cancelled;
                job.hub.close();
                Ok(JobStatus::Cancelled)
            }
            JobStatus::Running => {
                job.cancel_requested = true;
                job.control.request_stop();
                Ok(JobStatus::Running)
            }
            terminal => Err(format!("job {id} is already {}", terminal.as_str())),
        }
    }

    /// Requests one snapshot of a running job at its next boundary.
    pub fn checkpoint_now(&self, id: u64) -> Result<(), String> {
        let state = self.state.lock().expect("table lock");
        let job = state
            .jobs
            .iter()
            .find(|j| j.id == id)
            .ok_or_else(|| format!("no job {id}"))?;
        if job.status != JobStatus::Running {
            return Err(format!("job {id} is {}, not running", job.status.as_str()));
        }
        job.control.request_checkpoint();
        Ok(())
    }

    /// Worker-thread main loop: claim queued jobs until a drain starts,
    /// then return once the queue holds no more runnable work.
    pub fn worker_loop(&self) {
        loop {
            let claimed = {
                let mut state = self.state.lock().expect("table lock");
                loop {
                    if state.draining {
                        return;
                    }
                    if let Some(job) = state
                        .jobs
                        .iter_mut()
                        .find(|j| j.status == JobStatus::Queued)
                    {
                        job.status = JobStatus::Running;
                        break Some((
                            job.id,
                            job.spec.clone(),
                            job.resume,
                            job.control.clone(),
                            Arc::clone(&job.hub),
                        ));
                    }
                    let (next, _timeout) = self
                        .cond
                        .wait_timeout(state, Duration::from_millis(200))
                        .expect("table lock");
                    state = next;
                }
            };
            let Some((id, spec, resume, control, hub)) = claimed else {
                return;
            };
            let outcome = run_job(&spec, &self.job_dir(id), resume, &control, &hub);
            hub.close();
            let mut state = self.state.lock().expect("table lock");
            let draining = state.draining;
            if let Some(job) = state.jobs.iter_mut().find(|j| j.id == id) {
                match outcome {
                    Ok(summary) => {
                        job.status = if summary.completed {
                            JobStatus::Done
                        } else if job.cancel_requested {
                            JobStatus::Cancelled
                        } else if draining {
                            JobStatus::Interrupted
                        } else {
                            // Stopped early without a cause we triggered;
                            // the snapshot still allows a resume.
                            JobStatus::Interrupted
                        };
                        job.summary = Some(summary);
                    }
                    Err(err) => {
                        job.status = JobStatus::Failed;
                        job.error = Some(err);
                    }
                }
            }
        }
    }

    /// Starts a graceful drain: stops accepting queue claims and asks
    /// every running job to stop (each writes a final snapshot at its
    /// boundary). Returns once the flag is set; callers join the worker
    /// threads, then call [`JobTable::save_state`].
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("table lock");
        state.draining = true;
        for job in &state.jobs {
            match job.status {
                JobStatus::Running => job.control.request_stop(),
                JobStatus::Queued => job.hub.close(),
                _ => {}
            }
        }
        drop(state);
        self.cond.notify_all();
    }

    /// Whether a drain has started.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.state.lock().expect("table lock").draining
    }

    /// Writes `state.jsonl`: one line per job (id, status, spec), so a
    /// restarted daemon can list finished jobs and re-queue unfinished
    /// ones. Call after the workers have joined.
    pub fn save_state(&self) -> io::Result<()> {
        let state = self.state.lock().expect("table lock");
        let mut out = String::new();
        for job in &state.jobs {
            let mut w = ObjectWriter::with_type("job_state");
            w.num("id", job.id);
            w.str("status", job.status.as_str());
            w.str("spec", &job.spec.to_json());
            out.push_str(&w.finish());
            out.push('\n');
        }
        let tmp = self.data_dir.join("state.jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(tmp, self.data_dir.join("state.jsonl"))
    }

    /// Loads `state.jsonl` (if present) into the table; unfinished jobs
    /// are re-queued with `resume = true`, terminal jobs get their hubs
    /// seeded from `events.jsonl` so late subscribers can still replay.
    fn load_state(&self) -> io::Result<()> {
        let path = self.data_dir.join("state.jsonl");
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut state = self.state.lock().expect("table lock");
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Some(fields) = Fields::parse(line) else {
                continue;
            };
            if fields.str("type") != Some("job_state") {
                continue;
            }
            let (Some(id), Some(status), Some(spec_json)) = (
                fields.u64("id"),
                fields.str("status").and_then(JobStatus::parse),
                fields.str("spec"),
            ) else {
                continue;
            };
            let Ok(spec) = JobSpec::from_json(spec_json) else {
                continue;
            };
            let hub = Arc::new(EventHub::new(self.hub_capacity));
            let (status, resume) = if status.is_terminal() {
                // Replay the finished stream for late subscribers.
                if let Ok(text) = fs::read_to_string(self.events_path(id)) {
                    for event_line in text.lines().filter(|l| !l.is_empty()) {
                        hub.publish(event_line);
                    }
                }
                hub.close();
                (status, false)
            } else {
                (JobStatus::Queued, true)
            };
            state.next_id = state.next_id.max(id + 1);
            state.jobs.push(Job {
                id,
                spec,
                status,
                resume,
                cancel_requested: false,
                error: None,
                summary: None,
                control: StopHandle::new(),
                hub,
            });
        }
        Ok(())
    }
}

fn view(job: &Job) -> JobView {
    JobView {
        id: job.id,
        spec: job.spec.clone(),
        status: job.status,
        resume: job.resume,
        error: job.error.clone(),
        summary: job.summary,
        events: job.hub.published(),
    }
}

/// Streams every event both to the job's `events.jsonl` and to its
/// in-memory hub, so the SSE stream is bit-identical to the file.
struct TeeSink {
    file: JsonlSink,
    hub: Arc<EventHub>,
}

impl EventSink for TeeSink {
    fn emit(&self, event: &Event) {
        self.file.emit(event);
        self.hub.publish(&event.to_json());
    }

    fn flush(&self) {
        self.file.flush();
    }

    fn take_error(&self) -> Option<io::Error> {
        self.file.take_error()
    }
}

/// Executes one job in `dir`, honouring `control` and streaming through
/// `hub`. On resume, replays the existing `events.jsonl` into the hub
/// and appends to it, so both the file and any subscriber's stream stay
/// bit-identical to an uninterrupted run.
fn run_job(
    spec: &JobSpec,
    dir: &Path,
    resume: bool,
    control: &StopHandle,
    hub: &Arc<EventHub>,
) -> Result<JobSummary, String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let ckpt_dir = dir.join("ckpt");
    let events = dir.join("events.jsonl");
    let snapshot = if resume {
        match spec {
            JobSpec::Campaign(_) => CheckpointPolicy::latest_snapshot(&ckpt_dir),
            JobSpec::Fleet(_) => CheckpointPolicy::latest_fleet_snapshot(&ckpt_dir),
        }
    } else {
        None
    };
    let file_sink = if snapshot.is_some() {
        // Seed the hub with the history so subscribers replay the whole
        // stream, then append — the concatenated log stays identical to
        // an uninterrupted run.
        if let Ok(text) = fs::read_to_string(&events) {
            for line in text.lines().filter(|l| !l.is_empty()) {
                hub.publish(line);
            }
        }
        JsonlSink::append(&events).map_err(|e| e.to_string())?
    } else {
        // Fresh start (including "resume" of a job that never reached
        // its first snapshot): truncate so no stale events linger.
        JsonlSink::create(&events).map_err(|e| e.to_string())?
    };
    let sink = SinkHandle::new(Arc::new(TeeSink {
        file: file_sink,
        hub: Arc::clone(hub),
    }));

    match spec {
        JobSpec::Campaign(job) => {
            let config = CampaignConfig {
                cases: job.cases,
                sample_every: job.sample_every,
                run: job.run,
            };
            let mut builder = CampaignSpec::builder(job.core, config)
                .sink(sink)
                .checkpoint(CheckpointPolicy::new(&ckpt_dir, job.checkpoint_every))
                .control(control.clone());
            if let Some(snapshot) = snapshot {
                builder = builder.resume_from(snapshot);
            }
            let spec = builder.build().map_err(|e| e.to_string())?;
            let mut fuzzer = job.fuzzer.build(job.seed);
            let result = run_campaign(fuzzer.as_mut(), &spec).map_err(|e| e.to_string())?;
            let (condition, line, fsm) = result.final_counts();
            Ok(JobSummary {
                completed: result.completed,
                condition,
                line,
                fsm,
                unique_signatures: result.unique_signatures,
            })
        }
        JobSpec::Fleet(job) => {
            let config = FleetConfig {
                epochs: job.epochs,
                cases_per_epoch: job.cases_per_epoch,
                run: job.run,
            };
            let mut builder = FleetSpec::builder(config)
                .sink(sink)
                .checkpoint(CheckpointPolicy::new(&ckpt_dir, job.checkpoint_every))
                .control(control.clone());
            if let Some(snapshot) = snapshot {
                builder = builder.resume_from(snapshot);
            }
            let spec = builder.build().map_err(|e| e.to_string())?;
            // Fleet jobs always run on the distributed runtime; the
            // launcher decides process vs thread workers. Healthy runs
            // are bit-identical to the in-process fleet either way.
            let mut launcher: Box<dyn WorkerLauncher> = match std::env::var(WORKER_BIN_ENV) {
                Ok(bin) if !bin.is_empty() => Box::new(ProcessLauncher::new(bin)),
                _ => Box::new(ThreadLauncher::new()),
            };
            let result = run_fleet_dist(
                &job.members,
                &spec,
                &DistConfig::default(),
                launcher.as_mut(),
            )
            .map_err(|e| e.to_string())?;
            let (condition, line, fsm) = result.final_counts();
            Ok(JobSummary {
                completed: result.completed,
                condition,
                line,
                fsm,
                unique_signatures: result
                    .merged_curve
                    .last()
                    .map_or(0, |s| s.unique_signatures),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfl::campaign::RunConfig;
    use hfl_dut::CoreKind;

    #[test]
    fn specs_round_trip_through_json() {
        let campaign = JobSpec::Campaign(CampaignRequest {
            fuzzer: FuzzerKind::Difuzz,
            seed: 7,
            core: CoreKind::Rocket,
            cases: 40,
            sample_every: 10,
            run: RunConfig::quick().with_batch(4).with_threads(2),
            checkpoint_every: 2,
        });
        let fleet = JobSpec::Fleet(FleetRequest {
            members: vec![
                MemberSpec::new(FuzzerKind::Difuzz, 5, CoreKind::Boom),
                MemberSpec::new(FuzzerKind::Cascade, 9, CoreKind::Boom),
            ],
            epochs: 3,
            cases_per_epoch: 24,
            run: RunConfig::quick(),
            checkpoint_every: 1,
        });
        for spec in [campaign, fleet] {
            let line = spec.to_json();
            assert_eq!(JobSpec::from_json(&line), Ok(spec), "{line}");
        }
    }

    #[test]
    fn invalid_specs_name_the_problem() {
        // Error messages come from the one shared validation path
        // (`RunRequest::validate` / `from_json` in `hfl::spec`).
        for (body, needle) in [
            ("nonsense", "flat JSON"),
            (r#"{"type":"other"}"#, "job_spec"),
            (r#"{"type":"job_spec"}"#, "kind"),
            (r#"{"type":"job_spec","kind":"campaign"}"#, "fuzzer"),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"nope","cases":5}"#,
                "unknown fuzzer",
            ),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz"}"#,
                "cases",
            ),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","cases":0}"#,
                "nonzero",
            ),
            (
                r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","cases":5,"core":"z80"}"#,
                "unknown core",
            ),
            (r#"{"type":"job_spec","kind":"fleet"}"#, "members"),
            (
                r#"{"type":"job_spec","kind":"fleet","members":"difuzz"}"#,
                "fuzzer:seed",
            ),
            (
                r#"{"type":"job_spec","kind":"fleet","members":"difuzz:5","epochs":0,"cases_per_epoch":9}"#,
                "nonzero",
            ),
            (r#"{"type":"job_spec","kind":"warp"}"#, "unknown job kind"),
        ] {
            let err = JobSpec::from_json(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn table_tracks_submit_cancel_and_state_round_trip() {
        let dir = std::env::temp_dir().join(format!("hfl-serve-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let table = JobTable::open(&dir, 64).expect("open");
        let spec = JobSpec::from_json(
            r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","cases":8}"#,
        )
        .expect("valid");
        let id = table.submit(spec.clone()).expect("submit");
        assert_eq!(table.get(id).expect("job").status, JobStatus::Queued);
        assert!(table.checkpoint_now(id).is_err(), "not running yet");
        assert_eq!(table.cancel(id), Ok(JobStatus::Cancelled));
        assert!(table.cancel(id).is_err(), "already terminal");
        let id2 = table.submit(spec).expect("submit");
        table.drain();
        table.save_state().expect("save");

        let reloaded = JobTable::open(&dir, 64).expect("reopen");
        assert_eq!(
            reloaded.get(id).expect("job").status,
            JobStatus::Cancelled,
            "terminal status survives restart"
        );
        let job2 = reloaded.get(id2).expect("job2");
        assert_eq!(job2.status, JobStatus::Queued, "unfinished job re-queues");
        assert!(job2.resume);
        let id3 = reloaded.submit(job2.spec).expect("submit");
        assert!(id3 > id2, "ids stay unique across restarts");
        let _ = fs::remove_dir_all(&dir);
    }
}
