//! The `hfl-serve` daemon binary.
//!
//! ```text
//! cargo run --release -p hfl-serve --bin hfl-serve -- \
//!     [--addr 127.0.0.1:7700] [--data-dir hfl-serve-data] [--workers 2] \
//!     [--worker-bin path/to/fleet_worker]
//! ```
//!
//! With `--worker-bin`, fleet jobs spawn that binary as one worker
//! process per member (the `hfl::wire` protocol); without it they run
//! protocol-identical worker threads in the daemon process.
//!
//! SIGTERM or SIGINT triggers a graceful drain: running jobs stop at
//! their next round/epoch boundary (each writing a final checkpoint),
//! the job table is persisted to `<data-dir>/state.jsonl`, and the
//! process exits. Restarting with the same `--data-dir` re-queues the
//! interrupted jobs, resuming from their snapshots — the combined event
//! logs stay bit-identical to uninterrupted runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hfl_serve::{Daemon, DaemonConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: hfl-serve [--addr HOST:PORT] [--data-dir DIR] [--workers N] [--worker-bin BIN]\n\
             SIGTERM drains gracefully; restart with the same --data-dir to resume."
        );
        return;
    }
    if let Some(bin) = arg_value(&args, "--worker-bin") {
        // Fleet jobs read this when choosing process vs thread workers.
        std::env::set_var(hfl_serve::jobs::WORKER_BIN_ENV, bin);
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| String::from("127.0.0.1:7700"));
    let data_dir = arg_value(&args, "--data-dir").unwrap_or_else(|| String::from("hfl-serve-data"));
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    // The std library has no signal API; registering the classic
    // signal(2) handler directly keeps the daemon dependency-free.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }

    let config = DaemonConfig::new(addr, data_dir).with_workers(workers);
    let daemon = match Daemon::bind(&config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("hfl-serve: cannot start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    match daemon.local_addr() {
        Ok(addr) => println!(
            "hfl-serve: listening on {addr} (data in {:?})",
            config.data_dir
        ),
        Err(_) => println!("hfl-serve: listening"),
    }
    let flag = shutdown_flag();
    if let Err(e) = daemon.run(&flag) {
        eprintln!("hfl-serve: {e}");
        std::process::exit(1);
    }
    println!("hfl-serve: drained, state saved");
}

/// The daemon API takes `Arc<AtomicBool>`, but a signal handler can
/// only touch a static — mirror the static into a shared flag.
fn shutdown_flag() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    let mirror = Arc::clone(&flag);
    std::thread::spawn(move || loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            mirror.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    });
    flag
}
