//! The HTTP daemon: accept loop, request routing and SSE streaming.
//!
//! Endpoints (all responses are flat JSON unless noted):
//!
//! | Method | Path                     | Meaning                                  |
//! |--------|--------------------------|------------------------------------------|
//! | GET    | `/healthz`               | liveness + job counts                    |
//! | POST   | `/jobs`                  | submit a `JobSpec` (body) → `201` + id   |
//! | GET    | `/jobs`                  | all jobs, one JSON object per line       |
//! | GET    | `/jobs/<id>`             | one job's status document                |
//! | POST   | `/jobs/<id>/cancel`      | stop at the next boundary                |
//! | POST   | `/jobs/<id>/checkpoint`  | snapshot at the next boundary            |
//! | GET    | `/jobs/<id>/events`      | live SSE stream of the job's JSONL log   |
//! | GET    | `/jobs/<id>/log`         | the raw `events.jsonl` (download)        |
//! | GET    | `/jobs/<id>/checkpoint`  | the latest snapshot container (binary)   |
//! | GET    | `/jobs/<id>/poc`         | the quarantine corpus (PoC test cases)   |
//!
//! Each accepted connection is handled on its own thread; the accept
//! loop polls a shutdown flag, so a SIGTERM turns into
//! [`JobTable::drain`] + `state.jsonl` within one poll interval.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hfl::json::ObjectWriter;

use crate::http::{read_request, write_response, write_sse_head, Request};
use crate::hub::Recv;
use crate::jobs::{JobSpec, JobStatus, JobTable, DEFAULT_HUB_CAPACITY};
use crate::sse::encode_frame;

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Root directory for job artifacts and `state.jsonl`.
    pub data_dir: PathBuf,
    /// Worker threads executing jobs (concurrent jobs).
    pub workers: usize,
    /// Events retained per job for SSE subscribers.
    pub hub_capacity: usize,
}

impl DaemonConfig {
    /// A daemon on `addr` with artifacts under `data_dir`.
    #[must_use]
    pub fn new(addr: impl Into<String>, data_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            addr: addr.into(),
            data_dir: data_dir.into(),
            workers: 2,
            hub_capacity: DEFAULT_HUB_CAPACITY,
        }
    }

    /// Sets the worker-pool size (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> DaemonConfig {
        self.workers = workers.max(1);
        self
    }
}

/// A bound daemon, ready to [`Daemon::run`].
pub struct Daemon {
    listener: TcpListener,
    table: Arc<JobTable>,
    workers: usize,
}

impl Daemon {
    /// Binds the listener and opens (or restores) the job table.
    pub fn bind(config: &DaemonConfig) -> io::Result<Daemon> {
        let addr = config
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad listen address"))?;
        let listener = TcpListener::bind(addr)?;
        let table = Arc::new(JobTable::open(&config.data_dir, config.hub_capacity)?);
        Ok(Daemon {
            listener,
            table,
            workers: config.workers.max(1),
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon's job table (tests drive it directly).
    #[must_use]
    pub fn table(&self) -> Arc<JobTable> {
        Arc::clone(&self.table)
    }

    /// Serves until `shutdown` goes true, then drains: running jobs
    /// stop at their next boundary (writing final snapshots), workers
    /// join, and `state.jsonl` records every job for the next daemon.
    pub fn run(self, shutdown: &Arc<AtomicBool>) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers = Vec::new();
        for _ in 0..self.workers {
            let table = Arc::clone(&self.table);
            workers.push(thread::spawn(move || table.worker_loop()));
        }
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let table = Arc::clone(&self.table);
                    let shutdown = Arc::clone(shutdown);
                    handlers.push(thread::spawn(move || {
                        handle_connection(stream, &table, &shutdown);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
        }
        // Graceful drain: stop the queue, stop running jobs at their
        // boundaries, then persist the table for the next daemon.
        self.table.drain();
        for worker in workers {
            let _ = worker.join();
        }
        self.table.save_state()?;
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, table: &JobTable, shutdown: &Arc<AtomicBool>) {
    // A stalled peer must not pin the handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            let _ = respond_error(&mut stream, err.status(), &err.to_string());
            return;
        }
    };
    let _ = route(&mut stream, &request, table, shutdown);
}

fn respond_error<W: Write>(stream: &mut W, status: u16, message: &str) -> io::Result<()> {
    let mut w = ObjectWriter::with_type("error");
    w.str("error", message);
    respond_json(stream, status, &w.finish())
}

fn respond_json<W: Write>(stream: &mut W, status: u16, body: &str) -> io::Result<()> {
    let body = format!("{body}\n");
    write_response(stream, status, "application/json", body.as_bytes())
}

fn route(
    stream: &mut TcpStream,
    request: &Request,
    table: &JobTable,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let jobs = table.list();
            let running = jobs
                .iter()
                .filter(|j| j.status == JobStatus::Running)
                .count();
            let mut w = ObjectWriter::with_type("health");
            w.str("status", if table.draining() { "draining" } else { "ok" });
            w.num("jobs", jobs.len() as u64);
            w.num("running", running as u64);
            respond_json(stream, 200, &w.finish())
        }
        ("POST", ["jobs"]) => {
            if table.draining() {
                return respond_error(stream, 503, "daemon is draining");
            }
            let body = String::from_utf8_lossy(&request.body);
            match JobSpec::from_json(body.trim()) {
                Ok(spec) => match table.submit(spec) {
                    Ok(id) => {
                        let mut w = ObjectWriter::with_type("job");
                        w.num("id", id);
                        w.str("status", JobStatus::Queued.as_str());
                        respond_json(stream, 201, &w.finish())
                    }
                    Err(e) => respond_error(stream, 500, &e.to_string()),
                },
                Err(message) => respond_error(stream, 400, &message),
            }
        }
        ("GET", ["jobs"]) => {
            let mut body = String::new();
            for job in table.list() {
                body.push_str(&job.to_json());
                body.push('\n');
            }
            write_response(stream, 200, "application/jsonl", body.as_bytes())
        }
        ("GET", ["jobs", id]) => {
            with_job(stream, table, id, |stream, table, id| match table.get(id) {
                Some(job) => respond_json(stream, 200, &job.to_json()),
                None => respond_error(stream, 404, &format!("no job {id}")),
            })
        }
        ("POST", ["jobs", id, "cancel"]) => with_job(stream, table, id, |stream, table, id| {
            match table.cancel(id) {
                Ok(status) => {
                    let mut w = ObjectWriter::with_type("job");
                    w.num("id", id);
                    w.str("status", status.as_str());
                    w.bool("stopping", status == JobStatus::Running);
                    respond_json(stream, 202, &w.finish())
                }
                Err(message) => respond_error(stream, 409, &message),
            }
        }),
        ("POST", ["jobs", id, "checkpoint"]) => with_job(stream, table, id, |stream, table, id| {
            match table.checkpoint_now(id) {
                Ok(()) => {
                    let mut w = ObjectWriter::with_type("job");
                    w.num("id", id);
                    w.bool("checkpoint_requested", true);
                    respond_json(stream, 202, &w.finish())
                }
                Err(message) => respond_error(stream, 409, &message),
            }
        }),
        ("GET", ["jobs", id, "events"]) => with_job(stream, table, id, |stream, table, id| {
            stream_events(stream, table, id, request, shutdown)
        }),
        ("GET", ["jobs", id, "log"]) => with_job(stream, table, id, |stream, table, id| {
            serve_file(
                stream,
                table,
                id,
                table.events_path(id),
                "application/jsonl",
            )
        }),
        ("GET", ["jobs", id, "checkpoint"]) => with_job(stream, table, id, |stream, table, id| {
            let dir = table.checkpoint_dir(id);
            let snapshot = match table.get(id).map(|j| j.spec.kind()) {
                Some("fleet") => hfl::campaign::CheckpointPolicy::latest_fleet_snapshot(&dir),
                Some(_) => hfl::campaign::CheckpointPolicy::latest_snapshot(&dir),
                None => None,
            };
            match snapshot {
                Some(path) => serve_file(stream, table, id, path, "application/octet-stream"),
                None => respond_error(stream, 404, &format!("job {id} has no snapshot yet")),
            }
        }),
        ("GET", ["jobs", id, "poc"]) => with_job(stream, table, id, |stream, table, id| {
            let path = table.checkpoint_dir(id).join("quarantine.corpus");
            serve_file(stream, table, id, path, "text/plain")
        }),
        ("GET" | "POST", _) => respond_error(stream, 404, &format!("no route {}", request.path)),
        _ => respond_error(
            stream,
            405,
            &format!("method {} not allowed", request.method),
        ),
    }
}

/// Parses the `<id>` segment and forwards; non-numeric ids are 404s.
fn with_job<F>(stream: &mut TcpStream, table: &JobTable, id: &str, f: F) -> io::Result<()>
where
    F: FnOnce(&mut TcpStream, &JobTable, u64) -> io::Result<()>,
{
    match id.parse::<u64>() {
        Ok(id) => f(stream, table, id),
        Err(_) => respond_error(stream, 404, &format!("job id {id:?} is not a number")),
    }
}

fn serve_file(
    stream: &mut TcpStream,
    table: &JobTable,
    id: u64,
    path: PathBuf,
    content_type: &str,
) -> io::Result<()> {
    if table.get(id).is_none() {
        return respond_error(stream, 404, &format!("no job {id}"));
    }
    match std::fs::read(&path) {
        Ok(bytes) => write_response(stream, 200, content_type, &bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => respond_error(
            stream,
            404,
            &format!(
                "job {id} has no {:?} yet",
                path.file_name().unwrap_or_default()
            ),
        ),
        Err(e) => respond_error(stream, 500, &e.to_string()),
    }
}

/// Streams a job's event hub as SSE until the stream closes (job done),
/// the client disconnects, or the daemon shuts down. `?tail=1` skips
/// the replay and follows from the current position.
fn stream_events(
    stream: &mut TcpStream,
    table: &JobTable,
    id: u64,
    request: &Request,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    let Some(hub) = table.hub(id) else {
        return respond_error(stream, 404, &format!("no job {id}"));
    };
    let mut subscriber = if request.query.split('&').any(|kv| kv == "tail=1") {
        hub.subscribe_tail()
    } else {
        hub.subscribe()
    };
    write_sse_head(stream)?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            stream.write_all(encode_frame(Some("end"), r#"{"reason":"shutdown"}"#).as_bytes())?;
            return stream.flush();
        }
        match subscriber.next(Duration::from_millis(250)) {
            Recv::Line { line, .. } => {
                stream.write_all(encode_frame(None, &line).as_bytes())?;
                stream.flush()?;
            }
            Recv::Lagged { missed } => {
                let mut w = ObjectWriter::with_type("lag");
                w.num("missed", missed);
                stream.write_all(encode_frame(Some("lag"), &w.finish()).as_bytes())?;
                stream.flush()?;
            }
            Recv::Closed => {
                let mut w = ObjectWriter::with_type("end");
                w.num("dropped", subscriber.total_dropped());
                stream.write_all(encode_frame(Some("end"), &w.finish()).as_bytes())?;
                return stream.flush();
            }
            Recv::TimedOut => {
                // Keep-alive comment; also detects dead clients so the
                // handler thread exits instead of waiting forever.
                stream.write_all(b": keep-alive\n")?;
                stream.flush()?;
            }
        }
    }
}

/// Convenience for the binary and tests: spawns the daemon on its own
/// thread and returns its address plus a join handle.
pub fn spawn(
    config: DaemonConfig,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, thread::JoinHandle<io::Result<()>>)> {
    let daemon = Daemon::bind(&config)?;
    let addr = daemon.local_addr()?;
    let handle = thread::spawn(move || daemon.run(&shutdown));
    Ok((addr, handle))
}

/// Minimal blocking HTTP client for the e2e tests, the CI smoke job and
/// `campaign_report --follow`: sends one request, returns
/// `(status, body)`. Not a general client — just enough for this
/// daemon's `Connection: close` responses.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    let body_bytes = body.unwrap_or("").as_bytes();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body_bytes.len()
    )?;
    stream.write_all(body_bytes)?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_http_response(&response)
}

/// Splits a full `Connection: close` response into status and body.
pub fn parse_http_response(raw: &[u8]) -> io::Result<(u16, Vec<u8>)> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}
