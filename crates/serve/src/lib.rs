//! **hfl-serve** — campaign-as-a-service for the HFL reproduction.
//!
//! A std-only daemon (hand-rolled HTTP/1.1 + SSE over [`std::net`]
//! sockets; the workspace is offline) that accepts campaign and fleet
//! jobs as serializable [`jobs::JobSpec`] documents, multiplexes them
//! over a bounded worker pool, streams each job's typed JSONL event
//! protocol live to any number of SSE subscribers (bounded
//! per-subscriber buffers with explicit lag/drop accounting), and
//! serves checkpoint snapshots and quarantined PoC artifacts over GET.
//!
//! The module split mirrors the layering:
//!
//! - [`http`]: the HTTP/1.1 request parser and response writer,
//! - [`sse`]: SSE frame encoding and the incremental client-side parser
//!   (shared with `campaign_report --follow`),
//! - [`hub`]: the per-job bounded broadcast ring behind the SSE fan-out,
//! - [`jobs`]: `JobSpec` (de)serialisation, the job table, the worker
//!   pool, and drain/resume state,
//! - [`daemon`]: the accept loop and endpoint routing.
//!
//! Determinism contract: a job's SSE stream carries exactly the lines
//! of its `events.jsonl`, and a SIGTERM-drained job resumed by a
//! restarted daemon appends to both, so the concatenated stream is
//! bit-identical (timing events aside) to an uninterrupted run — the
//! property the `service_e2e` test and the CI `serve-smoke` job check.

pub mod daemon;
pub mod http;
pub mod hub;
pub mod jobs;
pub mod sse;

pub use daemon::{http_request, parse_http_response, spawn, Daemon, DaemonConfig};
pub use hub::{EventHub, Recv, Subscriber};
pub use jobs::{JobSpec, JobStatus, JobSummary, JobTable, JobView};
pub use sse::{encode_frame, SseClient, SseFrame, SseParser};
