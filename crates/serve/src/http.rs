//! Minimal HTTP/1.1 request parser and response writer over blocking
//! byte streams.
//!
//! The workspace is offline, so the daemon speaks just enough HTTP/1.1
//! by hand: a request line, a flat header block, and an optional
//! `Content-Length` body. The parser reads from any [`Read`] and is
//! tolerant of arbitrarily fragmented input (it consumes byte by byte
//! into an internal buffer, so a peer that trickles one byte per
//! syscall parses identically to one that sends the request in a single
//! segment — property-tested in `tests/serve_proto.rs`).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard limits keeping a hostile peer from ballooning memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum number of header lines accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum `Content-Length` accepted for a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed. Maps onto an HTTP status code via
/// [`ParseError::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The connection closed before a full request arrived.
    ConnectionClosed,
    /// The request line is not `METHOD TARGET HTTP/1.x`.
    BadRequestLine,
    /// A header line has no `:` separator or a blank name.
    BadHeader,
    /// The head (request line + headers) exceeded [`MAX_HEAD_BYTES`] or
    /// [`MAX_HEADERS`].
    HeadTooLarge,
    /// `Content-Length` is not a number.
    BadContentLength,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The underlying stream failed.
    Io(io::ErrorKind),
}

impl ParseError {
    /// The HTTP status code this error answers with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            _ => 400,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed mid-request"),
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadHeader => write!(f, "malformed header line"),
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::BadContentLength => write!(f, "content-length is not a number"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::Io(kind) => write!(f, "i/o error reading request: {kind:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One parsed request: method, split target, lower-cased headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// The target path without the query string (`/jobs/3/events`).
    pub path: String,
    /// The raw query string after `?`, empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names are lower-cased, values
    /// trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path split on `/` with empty segments dropped, so
    /// `/jobs/3/events` routes as `["jobs", "3", "events"]`.
    #[must_use]
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Reads one request from `stream`. Blocks until the head and declared
/// body have arrived, the peer closes, or the stream errors.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ParseError> {
    let head = read_head(stream)?;
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let (method, path, query) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::HeadTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::BadContentLength)?,
        None => 0,
    };
    if body_len > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; body_len];
    read_exact_tolerant(stream, &mut body)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Splits `METHOD TARGET HTTP/1.x` and the target's query string.
fn parse_request_line(line: &str) -> Result<(String, String, String), ParseError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine);
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(ParseError::BadRequestLine);
    }
    if !target.starts_with('/') {
        return Err(ParseError::BadRequestLine);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    Ok((method.to_ascii_uppercase(), path, query))
}

/// Reads until the blank line ending the head; returns the head bytes
/// (without the terminating `\r\n\r\n`).
fn read_head<R: Read>(stream: &mut R) -> Result<Vec<u8>, ParseError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(ParseError::ConnectionClosed),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        // Bare-\n tolerance: some hand-written clients skip the \r.
        if head.ends_with(b"\n\n") {
            head.truncate(head.len() - 2);
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
    }
}

/// `read_exact` that reports closure as [`ParseError::ConnectionClosed`]
/// and retries `Interrupted`.
fn read_exact_tolerant<R: Read>(stream: &mut R, buf: &mut [u8]) -> Result<(), ParseError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ParseError::ConnectionClosed),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
    }
    Ok(())
}

/// The reason phrase for the handful of status codes the daemon uses.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a streaming SSE response (no `Content-Length`;
/// the body is written frame by frame until the connection closes).
pub fn write_sse_head<W: Write>(stream: &mut W) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out one byte per `read` call — the worst
    /// possible fragmentation.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn parses_request_with_body_from_fragmented_stream() {
        let raw = b"POST /jobs?replay=all HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Trickle(raw)).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "replay=all");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.segments(), vec!["jobs"]);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            assert_eq!(
                read_request(&mut Trickle(raw)),
                Err(ParseError::BadRequestLine),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_bad_headers_and_lengths() {
        let no_colon = b"GET / HTTP/1.1\r\nnocolon\r\n\r\n";
        assert_eq!(
            read_request(&mut Trickle(no_colon)),
            Err(ParseError::BadHeader)
        );
        let bad_len = b"GET / HTTP/1.1\r\nContent-Length: four\r\n\r\n";
        assert_eq!(
            read_request(&mut Trickle(bad_len)),
            Err(ParseError::BadContentLength)
        );
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert_eq!(
            read_request(&mut Trickle(huge.as_bytes())),
            Err(ParseError::BodyTooLarge)
        );
    }

    #[test]
    fn truncated_requests_report_closure() {
        for raw in [
            &b"GET / HT"[..],
            b"GET / HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc",
        ] {
            assert_eq!(
                read_request(&mut Trickle(raw)),
                Err(ParseError::ConnectionClosed)
            );
        }
    }

    #[test]
    fn tolerates_bare_newlines() {
        let raw = b"GET /healthz HTTP/1.1\nHost: y\n\n";
        let req = read_request(&mut Trickle(raw)).expect("parses");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("y"));
    }
}
