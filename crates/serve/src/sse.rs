//! Server-Sent Events framing: the encoder the daemon streams with and
//! the incremental parser clients (`campaign_report --follow`, the e2e
//! tests, the CI smoke job) reassemble frames with.
//!
//! Only the subset of the SSE wire format the daemon emits is
//! implemented: `event:` / `data:` fields, comment lines (`:`), and the
//! blank-line frame terminator. Multi-line `data:` fields concatenate
//! with `\n` per the spec. The parser is incremental — feed it bytes in
//! arbitrary fragments and it yields each frame exactly once, no matter
//! where the fragment boundaries fall (property-tested in
//! `tests/serve_proto.rs`).

/// One decoded SSE frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseFrame {
    /// The `event:` field, if the frame carried one.
    pub event: Option<String>,
    /// The concatenated `data:` payload.
    pub data: String,
}

impl SseFrame {
    /// Whether this is a plain data frame (no `event:` override).
    #[must_use]
    pub fn is_data(&self) -> bool {
        self.event.is_none()
    }
}

/// Encodes one payload as an SSE frame. Embedded newlines become
/// multiple `data:` lines so any spec-compliant client reassembles the
/// original payload byte for byte.
#[must_use]
pub fn encode_frame(event: Option<&str>, data: &str) -> String {
    let mut out = String::new();
    if let Some(name) = event {
        out.push_str("event: ");
        out.push_str(name);
        out.push('\n');
    }
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Incremental SSE frame reassembler.
///
/// # Examples
///
/// ```
/// use hfl_serve::sse::{encode_frame, SseParser};
///
/// let wire = encode_frame(None, "{\"type\":\"round_start\"}");
/// let mut parser = SseParser::new();
/// // Feed the wire bytes one at a time — frames still come out whole.
/// let mut frames = Vec::new();
/// for byte in wire.as_bytes() {
///     frames.extend(parser.push(std::slice::from_ref(byte)));
/// }
/// assert_eq!(frames.len(), 1);
/// assert_eq!(frames[0].data, "{\"type\":\"round_start\"}");
/// ```
#[derive(Debug, Default)]
pub struct SseParser {
    buf: String,
    pending_event: Option<String>,
    pending_data: Vec<String>,
}

impl SseParser {
    /// A parser with no buffered input.
    #[must_use]
    pub fn new() -> SseParser {
        SseParser::default()
    }

    /// Consumes a fragment of the byte stream, returning every frame it
    /// completed. Invalid UTF-8 bytes are replaced (the daemon only
    /// emits UTF-8, so this only fires on corrupt streams).
    pub fn push(&mut self, bytes: &[u8]) -> Vec<SseFrame> {
        self.buf.push_str(&String::from_utf8_lossy(bytes));
        let mut frames = Vec::new();
        // Consume complete lines; whatever trails the last newline stays
        // buffered until the next push.
        while let Some(pos) = self.buf.find('\n') {
            let mut line: String = self.buf.drain(..=pos).collect();
            line.pop();
            if line.ends_with('\r') {
                line.pop();
            }
            if let Some(frame) = self.take_line(&line) {
                frames.push(frame);
            }
        }
        frames
    }

    /// Processes one complete line; a blank line flushes the pending
    /// frame.
    fn take_line(&mut self, line: &str) -> Option<SseFrame> {
        if line.is_empty() {
            if self.pending_event.is_none() && self.pending_data.is_empty() {
                return None;
            }
            let frame = SseFrame {
                event: self.pending_event.take(),
                data: self.pending_data.join("\n"),
            };
            self.pending_data.clear();
            return Some(frame);
        }
        if line.starts_with(':') {
            return None; // comment / keep-alive
        }
        let (field, value) = match line.split_once(':') {
            Some((f, v)) => (f, v.strip_prefix(' ').unwrap_or(v)),
            None => (line, ""),
        };
        match field {
            "event" => self.pending_event = Some(value.to_owned()),
            "data" => self.pending_data.push(value.to_owned()),
            _ => {} // id/retry/unknown fields are ignored
        }
        None
    }
}

/// A blocking SSE client over a plain TCP stream: connects, issues the
/// GET, strips the HTTP head, and yields frames as they arrive. Used by
/// `campaign_report --follow` and the CI smoke tooling.
#[derive(Debug)]
pub struct SseClient {
    stream: std::net::TcpStream,
    parser: SseParser,
    queue: std::collections::VecDeque<SseFrame>,
    head: Vec<u8>,
    head_done: bool,
}

impl SseClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7700`) and subscribes to
    /// `path` (e.g. `/jobs/3/events`).
    pub fn connect(addr: &str, path: &str) -> std::io::Result<SseClient> {
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(250)))?;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        Ok(SseClient {
            stream,
            parser: SseParser::new(),
            queue: std::collections::VecDeque::new(),
            head: Vec::new(),
            head_done: false,
        })
    }

    /// The next frame: `Ok(Some(frame))` when one arrived, `Ok(None)`
    /// on a poll timeout (call again), `Err` when the server closed the
    /// stream or rejected the subscription.
    pub fn next_frame(&mut self) -> std::io::Result<Option<SseFrame>> {
        use std::io::Read as _;
        if let Some(frame) = self.queue.pop_front() {
            return Ok(Some(frame));
        }
        let mut buf = [0u8; 4096];
        let n = match self.stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the event stream",
                ))
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        let chunk: Vec<u8> = if self.head_done {
            buf[..n].to_vec()
        } else {
            self.head.extend_from_slice(&buf[..n]);
            let Some(pos) = self.head.windows(4).position(|w| w == b"\r\n\r\n") else {
                return Ok(None);
            };
            let head_text = String::from_utf8_lossy(&self.head[..pos]);
            let status = head_text
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .unwrap_or(0);
            if status != 200 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("subscription rejected: HTTP {status}"),
                ));
            }
            self.head_done = true;
            self.head.split_off(pos + 4)
        };
        self.queue.extend(self.parser.push(&chunk));
        Ok(self.queue.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_multiline_payloads() {
        let payload = "line one\nline two\n\nline four";
        let wire = encode_frame(Some("end"), payload);
        let mut parser = SseParser::new();
        let frames = parser.push(wire.as_bytes());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].event.as_deref(), Some("end"));
        assert_eq!(frames[0].data, payload);
    }

    #[test]
    fn comments_and_unknown_fields_are_skipped() {
        let wire = ": keep-alive\nid: 4\ndata: x\n\n";
        let frames = SseParser::new().push(wire.as_bytes());
        assert_eq!(
            frames,
            vec![SseFrame {
                event: None,
                data: String::from("x")
            }]
        );
    }

    #[test]
    fn frames_survive_any_split_point() {
        let wire = format!(
            "{}{}",
            encode_frame(None, "{\"a\":1}"),
            encode_frame(Some("lag"), "{\"missed\":3}")
        );
        let bytes = wire.as_bytes();
        for split in 0..=bytes.len() {
            let mut parser = SseParser::new();
            let mut frames = parser.push(&bytes[..split]);
            frames.extend(parser.push(&bytes[split..]));
            assert_eq!(frames.len(), 2, "split at {split}");
            assert_eq!(frames[0].data, "{\"a\":1}");
            assert_eq!(frames[1].event.as_deref(), Some("lag"));
        }
    }
}
