//! UCB1 bandit controller over a small discrete arm set.
//!
//! The hierarchical scenario policy (HiFuzz-style) uses this as its
//! high-level controller: each arm is a semantic scenario, the reward is
//! the marginal-coverage indicator of the cases generated under it, and
//! the controller balances exploiting the currently best scenario with
//! re-probing the others.
//!
//! # Determinism contract
//!
//! Selection consumes **no randomness**: unpulled arms are taken in
//! ascending index order, and the UCB argmax breaks ties toward the
//! lowest index. The controller is therefore a pure function of its
//! `(counts, means)` state, which travels verbatim through checkpoints
//! ([`UcbBandit::counts`]/[`UcbBandit::means`] +
//! [`UcbBandit::from_parts`]) so a resumed campaign replays the exact
//! selection sequence of an uninterrupted one.

/// A UCB1 controller: per-arm pull counts and running reward means.
///
/// # Examples
///
/// ```
/// use hfl_rl::UcbBandit;
///
/// let mut bandit = UcbBandit::new(3, 1.4);
/// // Unpulled arms go first, in index order.
/// for expected in 0..3 {
///     let arm = bandit.select();
///     assert_eq!(arm, expected);
///     bandit.update(arm, if arm == 1 { 1.0 } else { 0.0 });
/// }
/// // With every arm pulled once, the best mean wins.
/// assert_eq!(bandit.select(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UcbBandit {
    counts: Vec<u64>,
    means: Vec<f64>,
    /// Exploration constant `c` in `mean + c·sqrt(ln(total)/count)`.
    c: f64,
}

impl UcbBandit {
    /// Creates a controller over `arms` arms with exploration constant
    /// `c` (the classic UCB1 uses `c = sqrt(2) ≈ 1.414`).
    ///
    /// # Panics
    /// Panics if `arms` is zero.
    #[must_use]
    pub fn new(arms: usize, c: f64) -> UcbBandit {
        assert!(arms > 0, "bandit needs at least one arm");
        UcbBandit {
            counts: vec![0; arms],
            means: vec![0.0; arms],
            c,
        }
    }

    /// Rebuilds a controller from checkpointed parts.
    ///
    /// # Panics
    /// Panics if the vectors are empty or of unequal length.
    #[must_use]
    pub fn from_parts(counts: Vec<u64>, means: Vec<f64>, c: f64) -> UcbBandit {
        assert!(!counts.is_empty(), "bandit needs at least one arm");
        assert_eq!(counts.len(), means.len(), "counts/means length mismatch");
        UcbBandit { counts, means, c }
    }

    /// Number of arms.
    #[must_use]
    pub fn arms(&self) -> usize {
        self.counts.len()
    }

    /// Per-arm pull counts (checkpointing).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-arm running reward means (checkpointing).
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The exploration constant.
    #[must_use]
    pub fn exploration(&self) -> f64 {
        self.c
    }

    /// Total pulls across all arms.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Picks the next arm: the lowest-index unpulled arm if any,
    /// otherwise the arm maximising `mean + c·sqrt(ln(total)/count)`
    /// (ties toward the lowest index). Consumes no randomness.
    #[must_use]
    pub fn select(&self) -> usize {
        if let Some(arm) = self.counts.iter().position(|&n| n == 0) {
            return arm;
        }
        let ln_total = (self.total() as f64).ln();
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (arm, (&n, &mean)) in self.counts.iter().zip(&self.means).enumerate() {
            let score = mean + self.c * (ln_total / n as f64).sqrt();
            if score > best_score {
                best = arm;
                best_score = score;
            }
        }
        best
    }

    /// Records one reward observation for `arm`, updating its running
    /// mean incrementally.
    ///
    /// # Panics
    /// Panics if `arm` is out of range.
    pub fn update(&mut self, arm: usize, reward: f64) {
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpulled_arms_are_taken_in_index_order() {
        let mut bandit = UcbBandit::new(4, 1.4);
        for expected in 0..4 {
            assert_eq!(bandit.select(), expected);
            bandit.update(expected, 0.5);
        }
    }

    #[test]
    fn best_mean_wins_once_all_arms_are_warm() {
        let mut bandit = UcbBandit::new(3, 0.1);
        for arm in 0..3 {
            for _ in 0..50 {
                bandit.update(arm, if arm == 2 { 0.9 } else { 0.1 });
            }
        }
        assert_eq!(bandit.select(), 2);
    }

    #[test]
    fn exploration_revisits_a_starved_arm() {
        let mut bandit = UcbBandit::new(2, 2.0);
        bandit.update(0, 0.6);
        bandit.update(1, 0.5);
        // Arm 0 leads on mean; keep rewarding it and the UCB width on
        // arm 1 must eventually win a pull.
        let mut revisited = false;
        for _ in 0..200 {
            let arm = bandit.select();
            if arm == 1 {
                revisited = true;
                break;
            }
            bandit.update(arm, 0.6);
        }
        assert!(revisited, "UCB never re-probed the starved arm");
    }

    #[test]
    fn ties_break_toward_the_lowest_index() {
        let mut bandit = UcbBandit::new(3, 1.4);
        for arm in 0..3 {
            bandit.update(arm, 0.5);
        }
        assert_eq!(bandit.select(), 0);
    }

    #[test]
    fn selection_is_a_pure_function_of_state() {
        let mut bandit = UcbBandit::new(5, 1.4);
        for i in 0..40u64 {
            let arm = bandit.select();
            bandit.update(arm, (i % 3) as f64 / 2.0);
        }
        let rebuilt = UcbBandit::from_parts(
            bandit.counts().to_vec(),
            bandit.means().to_vec(),
            bandit.exploration(),
        );
        assert_eq!(rebuilt, bandit);
        for _ in 0..10 {
            assert_eq!(rebuilt.select(), bandit.select());
        }
    }

    #[test]
    fn running_mean_matches_the_batch_mean() {
        let mut bandit = UcbBandit::new(1, 1.0);
        let rewards = [0.0, 1.0, 0.25, 0.75, 0.5];
        for r in rewards {
            bandit.update(0, r);
        }
        let batch = rewards.iter().sum::<f64>() / rewards.len() as f64;
        assert!((bandit.means()[0] - batch).abs() < 1e-12);
        assert_eq!(bandit.counts()[0], rewards.len() as u64);
    }
}
