//! Reinforcement-learning substrate: the PPO machinery of the hardware
//! fuzzing loop.
//!
//! Implements the paper's equations directly:
//!
//! - Eq. (1): reward `R = α · hardware_coverage + r_bonus`
//!   ([`RewardConfig`]),
//! - Eq. (2): advantage `Â_t = R_t + γ·V(S_{t+1}) − V(S_t)`
//!   ([`advantage`]),
//! - Eq. (3): predictor value loss (mean squared TD error,
//!   [`value_loss`]),
//! - Eq. (4): the clipped surrogate objective and its gradient with
//!   respect to the policy logits ([`ppo_logit_grad`]),
//!
//! plus the reward normalisation §V-B describes ([`RewardNormalizer`]).

pub mod bandit;
pub mod ppo;
pub mod reward;

pub use bandit::UcbBandit;
pub use ppo::{advantage, approx_kl, ppo_logit_grad, value_loss, PpoConfig};
pub use reward::{RewardConfig, RewardNormalizer};
