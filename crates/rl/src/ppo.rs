//! Proximal policy optimisation: advantage (Eq. 2), value loss (Eq. 3) and
//! the clipped surrogate objective (Eq. 4).

use hfl_nn::ops::{log_prob, softmax};

/// PPO hyper-parameters, defaulting to the paper's §V-B values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpoConfig {
    /// Discount factor γ (paper: 0.1).
    pub gamma: f32,
    /// Clipping threshold ε (paper: 0.2).
    pub epsilon: f32,
}

impl PpoConfig {
    /// γ = 0.1, ε = 0.2 per §V-B.
    #[must_use]
    pub fn paper_default() -> PpoConfig {
        PpoConfig {
            gamma: 0.1,
            epsilon: 0.2,
        }
    }
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig::paper_default()
    }
}

/// Eq. (2): `Â_t = R_t + γ·V(S_{t+1}) − V(S_t)`.
#[must_use]
pub fn advantage(reward: f32, v_next: f32, v_current: f32, gamma: f32) -> f32 {
    reward + gamma * v_next - v_current
}

/// Eq. (3): the predictor's squared TD error and its gradient with respect
/// to `V(S_t)`.
///
/// Returns `(loss, dL/dV)` for `L = (V(S_t) − (R_t + γ·V(S_{t+1})))²`.
/// The target is treated as a constant (semi-gradient TD), the standard
/// actor–critic practice.
#[must_use]
pub fn value_loss(v_current: f32, reward: f32, v_next: f32, gamma: f32) -> (f32, f32) {
    let target = reward + gamma * v_next;
    let err = v_current - target;
    (err * err, 2.0 * err)
}

/// The low-variance KL(π_old ‖ π) estimator `r − 1 − ln r` for one
/// probability ratio `r = π(a)/π_old(a)`.
///
/// Summed over an update's head ratios it tracks how far the tuned policy
/// drifted from the sampling policy — the telemetry companion to PPO's
/// clipping: clipping *bounds* the drift, this estimator *reports* it.
/// Non-negative for every `r > 0` (zero exactly at `r = 1`); non-positive
/// ratios (numerically impossible from `exp`) clamp to 0.
#[must_use]
pub fn approx_kl(ratio: f32) -> f32 {
    if ratio <= 0.0 {
        return 0.0;
    }
    (ratio - 1.0 - ratio.ln()).max(0.0)
}

/// Eq. (4): gradient of the *negated* clipped surrogate objective with
/// respect to the policy logits for one categorical head.
///
/// Maximising `min(r·Â, clip(r, 1−ε, 1+ε)·Â)` is implemented as gradient
/// descent on its negation. When the ratio is outside the clip range in
/// the direction that would increase the objective, the gradient is zero
/// (the PPO trust-region behaviour that keeps the tuned generator near
/// `π_old`, §IV-B).
///
/// Returns `(ratio, dlogits)`.
#[must_use]
pub fn ppo_logit_grad(
    logits: &[f32],
    action: usize,
    old_log_prob: f32,
    advantage: f32,
    epsilon: f32,
) -> (f32, Vec<f32>) {
    let new_log_prob = log_prob(logits, action);
    let ratio = (new_log_prob - old_log_prob).exp();
    // min(r·Â, clip(r)·Â): the unclipped branch is active (and carries
    // gradient) unless clipping binds against the objective's growth.
    let clipped_active = if advantage >= 0.0 {
        ratio > 1.0 + epsilon
    } else {
        ratio < 1.0 - epsilon
    };
    if clipped_active {
        return (ratio, vec![0.0; logits.len()]);
    }
    // d(-r·Â)/dlogit_j = -Â · r · (1[j==a] − p_j).
    let probs = softmax(logits);
    let coef = -advantage * ratio;
    let dlogits = probs
        .iter()
        .enumerate()
        .map(|(j, &p)| coef * (f32::from(u8::from(j == action)) - p))
        .collect();
    (ratio, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = PpoConfig::paper_default();
        assert!((cfg.gamma - 0.1).abs() < 1e-9);
        assert!((cfg.epsilon - 0.2).abs() < 1e-9);
    }

    #[test]
    fn advantage_eq2() {
        // Â = R + γV' − V
        assert!((advantage(1.0, 0.5, 0.2, 0.1) - (1.0 + 0.05 - 0.2)).abs() < 1e-6);
        assert!(advantage(0.0, 0.0, 1.0, 0.1) < 0.0, "overvalued state");
    }

    #[test]
    fn value_loss_eq3() {
        let (loss, grad) = value_loss(0.5, 1.0, 0.0, 0.1);
        assert!((loss - 0.25).abs() < 1e-6);
        assert!((grad - (-1.0)).abs() < 1e-6, "push V up toward the target");
        let (loss, grad) = value_loss(1.0, 0.0, 0.0, 0.1);
        assert!((loss - 1.0).abs() < 1e-6);
        assert!(grad > 0.0, "push V down");
    }

    #[test]
    fn positive_advantage_increases_action_probability() {
        let logits = vec![0.0f32, 0.0, 0.0];
        let old_lp = hfl_nn::ops::log_prob(&logits, 1);
        let (ratio, dlogits) = ppo_logit_grad(&logits, 1, old_lp, 1.0, 0.2);
        assert!((ratio - 1.0).abs() < 1e-6, "fresh policy has ratio 1");
        // Descending this gradient raises logit 1 and lowers the others.
        assert!(dlogits[1] < 0.0);
        assert!(dlogits[0] > 0.0 && dlogits[2] > 0.0);
    }

    #[test]
    fn negative_advantage_decreases_action_probability() {
        let logits = vec![0.0f32, 0.0];
        let old_lp = hfl_nn::ops::log_prob(&logits, 0);
        let (_, dlogits) = ppo_logit_grad(&logits, 0, old_lp, -1.0, 0.2);
        assert!(
            dlogits[0] > 0.0,
            "descend: logit 0 falls? no — gradient positive means the update lowers it"
        );
        assert!(dlogits[1] < 0.0);
    }

    #[test]
    fn clipping_zeroes_the_gradient_beyond_the_trust_region() {
        // Ratio > 1+ε with positive advantage: no further push.
        let logits = vec![2.0f32, 0.0];
        let old_lp = hfl_nn::ops::log_prob(&[0.0f32, 0.0], 0);
        let (ratio, dlogits) = ppo_logit_grad(&logits, 0, old_lp, 1.0, 0.2);
        assert!(ratio > 1.2);
        assert!(dlogits.iter().all(|&d| d == 0.0));
        // Same ratio with a *negative* advantage still carries gradient
        // (clipping only binds against objective growth).
        let (_, dlogits) = ppo_logit_grad(&logits, 0, old_lp, -1.0, 0.2);
        assert!(dlogits.iter().any(|&d| d != 0.0));
    }

    #[test]
    fn clipping_also_binds_below_for_negative_advantage() {
        // Ratio < 1−ε with negative advantage: gradient is zero.
        let logits = vec![-2.0f32, 0.0];
        let old_lp = hfl_nn::ops::log_prob(&[0.0f32, 0.0], 0);
        let (ratio, dlogits) = ppo_logit_grad(&logits, 0, old_lp, -1.0, 0.2);
        assert!(ratio < 0.8);
        assert!(dlogits.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn approx_kl_estimator_properties() {
        // Zero at r = 1, positive elsewhere, symmetric in sign of drift.
        assert_eq!(approx_kl(1.0), 0.0);
        assert!(approx_kl(1.2) > 0.0);
        assert!(approx_kl(0.8) > 0.0);
        // Second-order accurate near 1: r−1−ln r ≈ (r−1)²/2.
        let d = 1e-2f32;
        assert!((approx_kl(1.0 + d) - d * d / 2.0).abs() < 1e-6);
        // Degenerate inputs clamp instead of returning NaN/−inf.
        assert_eq!(approx_kl(0.0), 0.0);
        assert_eq!(approx_kl(-3.0), 0.0);
        assert!(approx_kl(f32::MAX).is_finite());
    }

    #[test]
    fn surrogate_numeric_gradient_check() {
        // For ratio inside the clip range the objective is r·Â; check the
        // analytic logit gradient against finite differences.
        let logits = vec![0.3f32, -0.2, 0.1];
        let action = 2;
        let old_lp = hfl_nn::ops::log_prob(&logits, action) - 0.05; // ratio ≈ 1.05
        let adv = 0.7;
        let eps_clip = 0.2;
        let (_, dlogits) = ppo_logit_grad(&logits, action, old_lp, adv, eps_clip);
        let objective = |l: &[f32]| -> f32 {
            let lp = hfl_nn::ops::log_prob(l, action);
            -adv * (lp - old_lp).exp() // negated objective (we descend)
        };
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += eps;
            let mut lm = logits.clone();
            lm[i] -= eps;
            let numeric = (objective(&lp) - objective(&lm)) / (2.0 * eps);
            assert!(
                (numeric - dlogits[i]).abs() < 1e-3,
                "dlogits[{i}]: analytic {} vs numeric {numeric}",
                dlogits[i]
            );
        }
    }

    #[test]
    fn descending_the_gradient_raises_the_chosen_action() {
        // One manual gradient-descent step must increase π(action).
        let mut logits = vec![0.0f32, 0.0, 0.0];
        let action = 0;
        let old_lp = hfl_nn::ops::log_prob(&logits, action);
        let before = hfl_nn::ops::softmax(&logits)[action];
        let (_, dlogits) = ppo_logit_grad(&logits, action, old_lp, 1.0, 0.2);
        for (l, d) in logits.iter_mut().zip(&dlogits) {
            *l -= 0.1 * d;
        }
        let after = hfl_nn::ops::softmax(&logits)[action];
        assert!(after > before);
    }
}
