//! Reward assignment (Eq. 1) and normalisation (§V-B).

/// The reward shape of Eq. (1): `R = α · hardware_coverage + r_bonus`,
/// with the bonus granted only when the test case sets a new coverage
/// record.
///
/// # Examples
///
/// ```
/// use hfl_rl::RewardConfig;
///
/// let cfg = RewardConfig::paper_default();
/// assert!(cfg.reward(0.5, true) > cfg.reward(0.5, false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardConfig {
    /// Coverage weight α.
    pub alpha: f32,
    /// Bonus for achieving the highest coverage observed so far.
    pub r_bonus: f32,
}

impl RewardConfig {
    /// The paper's §V-B settings: α = 0.2, r_bonus = 0.4.
    #[must_use]
    pub fn paper_default() -> RewardConfig {
        RewardConfig {
            alpha: 0.2,
            r_bonus: 0.4,
        }
    }

    /// Computes Eq. (1). `coverage` is the hardware-coverage fraction in
    /// `[0, 1]`; `new_best` grants the bonus.
    ///
    /// Callers compute the fraction as `hit / live_points`, and a rounding
    /// excursion (or a miscounted universe) outside `[0, 1]` must not
    /// inflate — or invert — the α term relative to the bonus scale, so
    /// the coverage input saturates at the boundaries. NaN saturates to 0
    /// (`f32::clamp` propagates NaN, which would poison the PPO update).
    #[must_use]
    pub fn reward(&self, coverage: f32, new_best: bool) -> f32 {
        let coverage = if coverage.is_nan() {
            0.0
        } else {
            coverage.clamp(0.0, 1.0)
        };
        self.alpha * coverage + if new_best { self.r_bonus } else { 0.0 }
    }
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig::paper_default()
    }
}

/// Running reward normaliser (Welford mean/variance).
///
/// §V-B: "we normalize the rewards: this adjustment sharpens gradients for
/// positive rewards and softens them for negative ones".
#[derive(Debug, Clone, Default)]
pub struct RewardNormalizer {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RewardNormalizer {
    /// Creates an empty normaliser.
    #[must_use]
    pub fn new() -> RewardNormalizer {
        RewardNormalizer::default()
    }

    /// Number of rewards observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean.
    #[must_use]
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Running standard deviation (zero until two samples exist).
    #[must_use]
    pub fn std(&self) -> f32 {
        if self.count < 2 {
            0.0
        } else {
            ((self.m2 / (self.count - 1) as f64).sqrt()) as f32
        }
    }

    /// Observes a raw reward and returns its normalised value
    /// `(r − mean) / (std + ε)` against the statistics *before* this
    /// observation, so the sample's own contribution never cancels part of
    /// its signal.
    ///
    /// During warm-up (fewer than two prior samples) and while the running
    /// variance is degenerate, rewards pass through mean-shifted only —
    /// the very first new-best coverage bonus of a campaign must reach the
    /// policy gradient instead of being crushed to zero.
    pub fn normalize(&mut self, reward: f32) -> f32 {
        let pre_mean = self.mean as f32;
        let pre_std = self.std();
        let normalized = if self.count < 2 || pre_std < 1e-6 {
            reward - pre_mean
        } else {
            (reward - pre_mean) / (pre_std + 1e-6)
        };
        self.count += 1;
        let delta = f64::from(reward) - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = f64::from(reward) - self.mean;
        self.m2 += delta * delta2;
        normalized
    }

    /// Resets the statistics (used by the reset module alongside the model
    /// re-initialisation).
    pub fn reset(&mut self) {
        *self = RewardNormalizer::default();
    }

    /// The raw Welford accumulators `(count, mean, m2)`, for checkpointing.
    #[must_use]
    pub fn state(&self) -> (u64, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Rebuilds a normaliser from accumulators captured by
    /// [`RewardNormalizer::state`].
    #[must_use]
    pub fn from_state(count: u64, mean: f64, m2: f64) -> RewardNormalizer {
        RewardNormalizer { count, mean, m2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_shape() {
        let cfg = RewardConfig::paper_default();
        assert!((cfg.alpha - 0.2).abs() < 1e-9);
        assert!((cfg.r_bonus - 0.4).abs() < 1e-9);
        assert!((cfg.reward(1.0, false) - 0.2).abs() < 1e-6);
        assert!((cfg.reward(1.0, true) - 0.6).abs() < 1e-6);
        assert_eq!(cfg.reward(0.0, false), 0.0);
    }

    #[test]
    fn higher_coverage_earns_more() {
        let cfg = RewardConfig::default();
        assert!(cfg.reward(0.8, false) > cfg.reward(0.3, false));
    }

    #[test]
    fn coverage_saturates_at_the_boundaries() {
        let cfg = RewardConfig::paper_default();
        // In-range values are untouched.
        assert_eq!(cfg.reward(0.0, false), cfg.alpha * 0.0);
        assert_eq!(cfg.reward(1.0, false), cfg.alpha * 1.0);
        // A rounding excursion above 1.0 must not out-scale the bonus.
        assert_eq!(cfg.reward(1.0 + 1e-3, false), cfg.reward(1.0, false));
        assert_eq!(cfg.reward(f32::INFINITY, true), cfg.reward(1.0, true));
        // Below zero saturates instead of producing a negative α term.
        assert_eq!(cfg.reward(-0.25, false), cfg.reward(0.0, false));
        assert_eq!(cfg.reward(f32::NEG_INFINITY, false), 0.0);
        // NaN input yields the bonus-only reward, never NaN.
        assert_eq!(cfg.reward(f32::NAN, true), cfg.r_bonus);
        assert_eq!(cfg.reward(f32::NAN, false), 0.0);
    }

    #[test]
    fn normalizer_converges_to_zero_mean_unit_scale() {
        let mut n = RewardNormalizer::new();
        let rewards: Vec<f32> = (0..1000).map(|i| ((i % 10) as f32) / 10.0).collect();
        let mut normed = Vec::new();
        for r in rewards {
            normed.push(n.normalize(r));
        }
        let tail = &normed[500..];
        let mean: f32 = tail.iter().sum::<f32>() / tail.len() as f32;
        assert!(mean.abs() < 0.2, "tail mean {mean}");
        assert!(tail.iter().any(|v| *v > 0.5));
        assert!(tail.iter().any(|v| *v < -0.5));
        assert_eq!(n.count(), 1000);
    }

    #[test]
    fn constant_rewards_mean_shift_to_zero_after_the_first() {
        let mut n = RewardNormalizer::new();
        assert_eq!(n.normalize(0.42), 0.42, "first sample passes through raw");
        for _ in 0..9 {
            let v = n.normalize(0.42);
            assert_eq!(v, 0.0, "no variance, no gradient sharpening");
        }
        assert!(n.std() < 1e-6);
    }

    #[test]
    fn first_new_best_bonus_is_not_zeroed() {
        // Regression: the first rewards of a campaign — including the first
        // new-best coverage bonus — must produce a nonzero gradient signal.
        let cfg = RewardConfig::paper_default();
        let mut n = RewardNormalizer::new();
        let bonus = cfg.reward(0.3, true);
        let normed = n.normalize(bonus);
        assert!(normed > 0.0, "first bonus crushed to zero: {normed}");
        assert!((normed - bonus).abs() < 1e-6, "warm-up passes raw rewards");
        // Second sample: mean-shifted against the first only.
        let second = n.normalize(0.1);
        assert!((second - (0.1 - bonus)).abs() < 1e-6);
    }

    #[test]
    fn normalizes_against_pre_update_statistics() {
        let mut n = RewardNormalizer::new();
        n.normalize(0.0);
        n.normalize(1.0);
        // Pre-update stats: mean 0.5, std ~0.7071. The buggy post-update
        // version would report (2 - 1.0) / (1.0 + eps) = ~1.0 instead.
        let v = n.normalize(2.0);
        let expected = (2.0 - 0.5) / (0.5f32.sqrt() + 1e-6);
        assert!(
            (v - expected).abs() < 1e-5,
            "pre-update normalisation: got {v}, want {expected}"
        );
        assert_eq!(n.count(), 3, "observation still recorded");
    }

    #[test]
    fn reset_clears_state() {
        let mut n = RewardNormalizer::new();
        n.normalize(1.0);
        n.normalize(2.0);
        n.reset();
        assert_eq!(n.count(), 0);
        assert_eq!(n.mean(), 0.0);
    }
}
