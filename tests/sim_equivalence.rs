//! Differential lockdown of the predecoded simulator hot path.
//!
//! Every optimisation in the predecode overhaul — the dense decoded-op
//! image, the superinstruction block path, the per-worker cache — is
//! allowed exactly zero observable effect. This suite drives randomly
//! generated programs (valid instructions, raw word soup, branches into
//! the background, self-traps) through the legacy per-step fetch+decode
//! interpreters and the predecoded dispatch on all three cores, with the
//! per-core defect catalogues and each injected bug armed individually,
//! and requires bit-identical architectural snapshots, halt reasons,
//! traces and coverage maps — then re-checks the whole pool at 1/2/8
//! worker threads.

use hfl::baselines::TestBody;
use hfl::exec::ExecPool;
use hfl::harness::{CaseResult, Executor};
use hfl_dut::{bugs, CoreKind, Dut, DutResult};
use hfl_grm::cpu::Cpu;
use hfl_grm::{PredecodedProgram, Program};
use hfl_riscv::{Instruction, Opcode, Reg};

const MAX_STEPS: u64 = 3_000;

/// Splitmix-style deterministic generator (the vendored proptest shim has
/// no collection strategies, so programs are expanded from a seed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x1405_7B7E);
        self.0 >> 16
    }
}

/// A word-soup program: real encodings (ALU ops, branches, loads/stores,
/// jumps) interleaved with raw draws that may decode to anything or trap
/// as illegal. Branch/jump targets may leave the body into the
/// deterministic background pattern — that is the point: both dispatch
/// paths must agree wherever the PC ends up.
fn seeded_words(seed: u64, len: usize) -> Vec<u32> {
    let mut lcg = Lcg(seed | 1);
    (0..len)
        .map(|_| {
            let d = lcg.next();
            let rd = Reg::from_index((d >> 8) as u8);
            let rs1 = Reg::from_index((d >> 13) as u8);
            let rs2 = Reg::from_index((d >> 18) as u8);
            match d % 10 {
                0..=2 => Instruction::i(Opcode::Addi, rd, rs1, (d % 256) as i64 - 128),
                3 => {
                    let op =
                        [Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::Sltu][(d % 4) as usize];
                    Instruction::r(op, rd, rs1, rs2)
                }
                4 => {
                    let op = [Opcode::Beq, Opcode::Bne, Opcode::Bltu][(d % 3) as usize];
                    Instruction::b(op, rs1, rs2, 4 * ((d % 8) as i64 - 3))
                }
                5 => Instruction::j(Opcode::Jal, rd, 4 * ((d % 16) as i64 - 7)),
                6 => Instruction::i(Opcode::Lw, rd, rs1, (d % 64) as i64),
                7 => Instruction::s(Opcode::Sw, rs2, (d % 64) as i64, rs1),
                8 => Instruction::i(Opcode::Csrrs, rd, Reg::X0, 0xC00), // rdcycle
                _ => return lcg.next() as u32, // raw soup, possibly illegal
            }
            .encode()
        })
        .collect()
}

fn assert_dut_results_match(legacy: &DutResult, fast: &DutResult, context: &str) {
    assert_eq!(legacy.halt, fast.halt, "{context}: halt reason");
    assert_eq!(legacy.steps, fast.steps, "{context}: retired steps");
    assert_eq!(legacy.cycles, fast.cycles, "{context}: modelled cycles");
    assert_eq!(legacy.arch, fast.arch, "{context}: architectural state");
    assert_eq!(legacy.trace, fast.trace, "{context}: trace");
    assert_eq!(legacy.coverage, fast.coverage, "{context}: coverage map");
}

/// The tentpole contract at the single-core level: for random programs,
/// the predecoded DUT and GRM paths reproduce the legacy interpreters bit
/// for bit on every core, under each core's shipped defect configuration.
#[test]
fn predecoded_paths_match_legacy_on_all_cores() {
    for core in CoreKind::ALL {
        let quirks = bugs::quirks_for(core);
        for seed in 0..24u64 {
            let len = 4 + (seed as usize * 7) % 44;
            let program = Program::assemble_raw(&seeded_words(seed * 2 + 1, len));
            let image = PredecodedProgram::new(&program);
            let context = format!("{core:?} seed {seed}");

            let legacy =
                Dut::new(core).run_program_with_quirks(&program, MAX_STEPS, quirks.clone());
            let fast = Dut::new(core).run_predecoded_with_quirks(
                &program,
                &image,
                MAX_STEPS,
                quirks.clone(),
            );
            assert_dut_results_match(&legacy, &fast, &context);

            let mut grm_legacy = Cpu::new();
            grm_legacy.load_program(&program);
            let legacy_run = grm_legacy.run(MAX_STEPS);
            let mut grm_fast = Cpu::new();
            grm_fast.load_program(&program);
            let fast_run = grm_fast.run_predecoded(&image, MAX_STEPS);
            assert_eq!(legacy_run, fast_run, "{context}: GRM run result");
            assert_eq!(grm_legacy.x, grm_fast.x, "{context}: GRM registers");
            assert_eq!(grm_legacy.pc, grm_fast.pc, "{context}: GRM pc");
            assert_eq!(grm_legacy.csrs, grm_fast.csrs, "{context}: GRM CSRs");
            assert_eq!(grm_legacy.trace, grm_fast.trace, "{context}: GRM trace");
        }
    }
}

/// Each catalogued injected bug, armed individually on its host core:
/// the quirk-bearing execution paths (traps, PMP grace windows, cache-line
/// crashes, flag bugs) must behave identically under both dispatchers.
#[test]
fn injected_bugs_trap_identically_in_both_dispatch_paths() {
    for bug in bugs::CATALOG {
        for &core in bug.cores {
            let mut quirks = hfl_grm::cpu::Quirks::default();
            bugs::enable(&mut quirks, bug.id, core);
            for seed in 0..8u64 {
                let len = 6 + (seed as usize * 5) % 30;
                let program = Program::assemble_raw(&seeded_words(seed ^ 0xB0B0, len));
                let image = PredecodedProgram::new(&program);
                let legacy =
                    Dut::new(core).run_program_with_quirks(&program, MAX_STEPS, quirks.clone());
                let fast = Dut::new(core).run_predecoded_with_quirks(
                    &program,
                    &image,
                    MAX_STEPS,
                    quirks.clone(),
                );
                assert_dut_results_match(
                    &legacy,
                    &fast,
                    &format!("bug {} on {core:?} seed {seed}", bug.id),
                );
            }
        }
    }
}

fn assert_cases_match(reference: &[CaseResult], got: &[CaseResult], context: &str) {
    assert_eq!(reference.len(), got.len(), "{context}: case count");
    for (i, (want, have)) in reference.iter().zip(got).enumerate() {
        assert_dut_results_match(&want.dut, &have.dut, &format!("{context} case {i}"));
        assert_eq!(want.grm_halt, have.grm_halt, "{context} case {i}: grm halt");
        assert_eq!(want.grm_arch, have.grm_arch, "{context} case {i}: grm arch");
        assert_eq!(
            want.grm_trace, have.grm_trace,
            "{context} case {i}: grm trace"
        );
        assert_eq!(
            want.mismatches, have.mismatches,
            "{context} case {i}: mismatches"
        );
    }
}

/// The pool-level contract: a batch of word-soup bodies yields identical
/// results at 1, 2 and 8 worker threads on every core — and those pooled
/// results equal a fresh single executor's, so neither the predecode
/// cache nor work stealing leaks into outputs.
#[test]
fn pool_results_are_identical_across_thread_counts() {
    for core in CoreKind::ALL {
        // Duplicated bodies on purpose: repeats exercise cache hits on
        // whichever worker the schedule lands them on.
        let bodies: Vec<TestBody> = (0..18u64)
            .map(|i| TestBody::Words(seeded_words(i / 2 + 100, 3 + (i as usize * 11) % 40)))
            .collect();
        let mut solo = Executor::builder(core).max_steps(MAX_STEPS).build();
        let reference: Vec<CaseResult> = bodies.iter().map(|b| solo.run(b)).collect();
        for threads in [1, 2, 8] {
            let prototype = Executor::builder(core).max_steps(MAX_STEPS).build();
            let mut pool = ExecPool::new(prototype, threads);
            let got = pool.run_batch(&bodies);
            assert_cases_match(&reference, &got, &format!("{core:?} threads {threads}"));
            let (hits, misses) = pool.predecode_stats();
            assert_eq!(
                hits + misses,
                bodies.len() as u64,
                "{core:?} threads {threads}: one cache lookup per case"
            );
        }
    }
}
