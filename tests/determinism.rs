//! Reproducibility: everything in the stack is a pure function of the
//! seed — simulators, fuzzers, training, campaigns.

use hfl::baselines::{CascadeFuzzer, ChatFuzzFuzzer, Fuzzer, TheHuzzFuzzer};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl::harness::Executor;
use hfl_dut::{CoreKind, Dut};
use hfl_grm::Program;
use hfl_riscv::{Instruction, Opcode, Reg};

#[test]
fn dut_runs_are_bit_identical() {
    let body = vec![
        Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 21),
        Instruction::r(Opcode::Mul, Reg::X11, Reg::X10, Reg::X10),
        Instruction::s(Opcode::Sd, Reg::X11, 0, Reg::X5),
        Instruction::i(Opcode::Ld, Reg::X12, Reg::X5, 0),
    ];
    let program = Program::assemble(&body);
    let run = || {
        let mut dut = Dut::new(CoreKind::Boom);
        dut.run_program(&program, 20_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.arch, b.arch);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn executor_mismatches_are_stable() {
    let run = || {
        let mut ex = Executor::builder(CoreKind::Cva6).build();
        let r = ex.run_case(&hfl::poc::poc_for("V2"));
        r.mismatches
            .iter()
            .map(hfl::Mismatch::signature)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn baseline_fuzzers_replay_identically() {
    let drive = |f: &mut dyn Fuzzer| (0..6).map(|_| f.next_case()).collect::<Vec<_>>();
    assert_eq!(
        drive(&mut TheHuzzFuzzer::new(17, 12)),
        drive(&mut TheHuzzFuzzer::new(17, 12))
    );
    assert_eq!(
        drive(&mut CascadeFuzzer::new(17, 64)),
        drive(&mut CascadeFuzzer::new(17, 64))
    );
    assert_eq!(
        drive(&mut ChatFuzzFuzzer::new(17, 12)),
        drive(&mut ChatFuzzFuzzer::new(17, 12))
    );
}

#[test]
fn whole_campaigns_reproduce_from_the_seed() {
    let run = || {
        let mut cfg = HflConfig::small();
        cfg.generator.hidden = 16;
        cfg.predictor.hidden = 16;
        cfg.test_len = 5;
        let mut hfl = HflFuzzer::new(cfg.with_seed(23));
        let spec = CampaignSpec::builder(CoreKind::Rocket, CampaignConfig::quick(30))
            .build()
            .expect("valid spec");
        let result = run_campaign(&mut hfl, &spec).expect("campaign runs");
        (
            result.curve.clone(),
            result.unique_signatures,
            result.total_mismatches,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "coverage curves must replay bit-for-bit");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn different_seeds_explore_differently() {
    let run = |seed: u64| {
        let mut cfg = HflConfig::small();
        cfg.generator.hidden = 16;
        cfg.predictor.hidden = 16;
        let mut hfl = HflFuzzer::new(cfg.with_seed(seed));
        hfl.next_case()
    };
    // Not a hard guarantee for any pair of seeds, but these two differ.
    assert_ne!(run(1), run(2));
}

/// The ISSUE's headline determinism guarantee: for a fixed batch size the
/// worker count never changes a campaign's outputs — curves, signatures
/// and first-detection indices are bit-identical at 1, 2 and 8 threads.
#[test]
fn thread_count_never_changes_campaign_outputs() {
    let config = CampaignConfig::quick(36).with_batch(4);
    let key = |result: &hfl::CampaignResult| {
        (
            result.curve.clone(),
            result.signatures.clone(),
            result.first_detection.clone(),
        )
    };

    let hfl_at = |threads: usize| {
        let mut cfg = HflConfig::small();
        cfg.generator.hidden = 16;
        cfg.predictor.hidden = 16;
        cfg.test_len = 6;
        let mut hfl = HflFuzzer::new(cfg.with_seed(31));
        let spec = CampaignSpec::builder(CoreKind::Cva6, config)
            .threads(threads)
            .build()
            .expect("valid spec");
        key(&run_campaign(&mut hfl, &spec).expect("campaign runs"))
    };
    let baseline_at = |threads: usize| {
        let mut fuzzer = TheHuzzFuzzer::new(31, 14);
        let spec = CampaignSpec::builder(CoreKind::Cva6, config)
            .threads(threads)
            .build()
            .expect("valid spec");
        key(&run_campaign(&mut fuzzer, &spec).expect("campaign runs"))
    };

    let hfl_reference = hfl_at(1);
    let baseline_reference = baseline_at(1);
    for threads in [2usize, 8] {
        assert_eq!(
            hfl_at(threads),
            hfl_reference,
            "HFL diverged at {threads} threads"
        );
        assert_eq!(
            baseline_at(threads),
            baseline_reference,
            "TheHuzz diverged at {threads} threads"
        );
    }
}
