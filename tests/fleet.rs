//! The fleet contract, end to end: a heterogeneous ensemble's merged
//! non-timing event stream, merged coverage curve and per-member results
//! must be bit-identical at any thread count and across a mid-run
//! interrupt + resume, and the merged ensemble must cover at least as
//! much as the best single member given the same total case budget.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use hfl::baselines::{CascadeFuzzer, DifuzzRtlFuzzer, Feedback, Fuzzer, TestBody, TheHuzzFuzzer};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, CheckpointPolicy};
use hfl::fleet::{run_fleet, FleetConfig, FleetMember, FleetResult, FleetSpec};
use hfl::obs::{replay_fleet, Event, RingSink, SinkHandle};
use hfl::StopHandle;
use hfl_dut::CoreKind;
use hfl_nn::PersistError;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hfl-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three cheap, deterministic members with distinct strategies.
fn make_members() -> Vec<FleetMember> {
    vec![
        FleetMember::new(
            "difuzz-7",
            CoreKind::Rocket,
            Box::new(DifuzzRtlFuzzer::new(7, 16)),
        ),
        FleetMember::new(
            "thehuzz-9",
            CoreKind::Rocket,
            Box::new(TheHuzzFuzzer::new(9, 16)),
        ),
        FleetMember::new(
            "cascade-1",
            CoreKind::Rocket,
            Box::new(CascadeFuzzer::new(1, 60)),
        ),
    ]
}

struct Observed {
    result: FleetResult,
    events: Vec<Event>,
}

fn run_observed(
    members: &mut [FleetMember],
    configure: impl FnOnce(hfl::fleet::FleetSpecBuilder) -> hfl::fleet::FleetSpecBuilder,
    config: FleetConfig,
    threads: usize,
) -> Observed {
    let ring = Arc::new(RingSink::new(1_000_000));
    let builder = FleetSpec::builder(config)
        .threads(threads)
        .sink(SinkHandle::new(ring.clone()));
    let spec = configure(builder).build().expect("valid spec");
    let result = run_fleet(members, &spec).expect("fleet runs");
    Observed {
        result,
        events: ring.events(),
    }
}

fn assert_results_match(tag: &str, a: &FleetResult, b: &FleetResult) {
    assert_eq!(a.merged_curve, b.merged_curve, "{tag}: merged curve");
    assert_eq!(a.budgets, b.budgets, "{tag}: budget vector");
    assert_eq!(a.corpus.entries(), b.corpus.entries(), "{tag}: corpus");
    assert_eq!(a.corpus.stats(), b.corpus.stats(), "{tag}: corpus stats");
    assert_eq!(a.members.len(), b.members.len(), "{tag}: member count");
    for (ma, mb) in a.members.iter().zip(&b.members) {
        assert_eq!(ma.name, mb.name, "{tag}");
        assert_eq!(ma.cases, mb.cases, "{tag}: {} cases", ma.name);
        assert_eq!(ma.curve, mb.curve, "{tag}: {} curve", ma.name);
        assert_eq!(ma.cumulative, mb.cumulative, "{tag}: {} coverage", ma.name);
        assert_eq!(ma.signatures, mb.signatures, "{tag}: {} sigs", ma.name);
        assert_eq!(
            ma.first_detection, mb.first_detection,
            "{tag}: {} detections",
            ma.name
        );
        assert_eq!(
            ma.instructions_executed, mb.instructions_executed,
            "{tag}: {} retired",
            ma.name
        );
        assert_eq!(
            ma.aborted_cases, mb.aborted_cases,
            "{tag}: {} aborts",
            ma.name
        );
    }
}

#[test]
fn merged_stream_and_curve_are_bit_identical_across_thread_counts() {
    let config = FleetConfig::quick(3, 18).with_batch(2);
    let mut reference_members = make_members();
    let reference = run_observed(&mut reference_members, |b| b, config, 1);
    assert!(reference.result.completed);
    // Every fleet event is non-timing by construction; the stream needs no
    // filtering before comparison.
    assert!(reference.events.iter().all(|e| !e.is_timing()));
    assert!(!reference.events.is_empty());

    for threads in [2usize, 8] {
        let mut members = make_members();
        let other = run_observed(&mut members, |b| b, config, threads);
        assert_eq!(
            reference.events, other.events,
            "event stream diverged at {threads} threads"
        );
        assert_results_match(
            &format!("{threads} threads"),
            &reference.result,
            &other.result,
        );
    }

    // The stream replays into per-epoch tables that agree with the
    // result's own merged curve and budget vector.
    let replay = replay_fleet(&reference.events);
    assert_eq!(replay.epochs.len(), reference.result.merged_curve.len());
    for (row, sample) in replay.epochs.iter().zip(&reference.result.merged_curve) {
        assert_eq!(row.epoch, sample.epoch);
        assert_eq!(row.cases, sample.cases);
        assert_eq!(row.condition, sample.condition as u64);
        assert_eq!(row.line, sample.line as u64);
        assert_eq!(row.fsm, sample.fsm as u64);
        assert_eq!(row.unique_signatures, sample.unique_signatures as u64);
    }
    let final_budgets: Vec<u64> = replay
        .members
        .iter()
        .filter(|m| m.epoch == 2)
        .map(|m| m.next_budget)
        .collect();
    assert_eq!(final_budgets, reference.result.budgets);
}

#[test]
fn fleet_accounting_adds_up() {
    let config = FleetConfig::quick(4, 21).with_batch(2);
    let mut members = make_members();
    let observed = run_observed(&mut members, |b| b, config, 1);
    let result = &observed.result;
    assert!(result.completed);

    // One merged sample per epoch; cases grow by exactly the epoch budget.
    assert_eq!(result.merged_curve.len(), 4);
    for (i, sample) in result.merged_curve.iter().enumerate() {
        assert_eq!(sample.epoch, i as u64);
        assert_eq!(sample.cases, (i as u64 + 1) * 21);
    }
    // Member cases sum to the fleet total, and the scheduler's next-epoch
    // budget vector still assigns every case.
    let total: u64 = result.members.iter().map(|m| m.cases).sum();
    assert_eq!(total, 4 * 21);
    assert_eq!(result.budgets.iter().sum::<u64>(), 21);
    assert!(result.budgets.iter().all(|&b| b >= 1));
    // Every member sampled its own curve once per epoch.
    for member in &result.members {
        assert_eq!(member.curve.len(), 4, "{}", member.name);
    }
    // The wall-clock phases were observed exactly once per epoch.
    for name in [
        "fleet.sync.seconds",
        "fleet.distill.seconds",
        "fleet.schedule.seconds",
    ] {
        let histogram = result.metrics.histogram(name).expect(name);
        assert_eq!(histogram.count, 4, "{name}");
    }
    assert_eq!(result.metrics.counter("fleet.epochs"), 4);
    assert_eq!(result.metrics.counter("fleet.cases"), 4 * 21);
    // The merged curve is monotone in every metric.
    for pair in result.merged_curve.windows(2) {
        assert!(pair[1].condition >= pair[0].condition);
        assert!(pair[1].line >= pair[0].line);
        assert!(pair[1].fsm >= pair[0].fsm);
        assert!(pair[1].unique_signatures >= pair[0].unique_signatures);
    }
}

#[test]
fn merged_coverage_dominates_the_best_single_member() {
    // Same total budget: the fleet splits 96 cases across two members,
    // each solo run gets all 96. The empirical claim the fleet exists
    // for: union of diverse strategies >= any one of them.
    let total = 96u64;
    let mut members = vec![
        FleetMember::new(
            "difuzz-7",
            CoreKind::Rocket,
            Box::new(DifuzzRtlFuzzer::new(7, 16)),
        ),
        FleetMember::new(
            "cascade-1",
            CoreKind::Rocket,
            Box::new(CascadeFuzzer::new(1, 60)),
        ),
    ];
    let config = FleetConfig::quick(4, 24).with_batch(4);
    let spec = FleetSpec::builder(config).build().expect("valid spec");
    let result = run_fleet(&mut members, &spec).expect("fleet runs");
    let (mc, ml, mf) = result.final_counts();

    let mut best = 0usize;
    let solo_config = CampaignConfig::quick(total).with_batch(4);
    let mut solos: Vec<Box<dyn Fuzzer>> = vec![
        Box::new(DifuzzRtlFuzzer::new(7, 16)),
        Box::new(CascadeFuzzer::new(1, 60)),
    ];
    for solo in &mut solos {
        let spec = CampaignSpec::builder(CoreKind::Rocket, solo_config)
            .build()
            .expect("valid spec");
        let outcome = run_campaign(solo.as_mut(), &spec).expect("solo runs");
        let (c, l, f) = outcome.final_counts();
        best = best.max(c + l + f);
    }
    assert!(
        mc + ml + mf >= best,
        "merged ({mc}, {ml}, {mf}) under best solo total {best}"
    );
}

/// Delegates to an inner fuzzer and raises the fleet's stop flag after a
/// fixed number of generation rounds — the fleet then finishes the
/// current epoch, checkpoints and returns.
struct StopAfterRounds {
    inner: Box<dyn Fuzzer>,
    rounds_left: u32,
    stop: StopHandle,
}

impl Fuzzer for StopAfterRounds {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn next_case(&mut self) -> TestBody {
        self.inner.next_case()
    }
    fn next_round(&mut self, n: usize) -> Vec<TestBody> {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.stop.request_stop();
            }
        }
        self.inner.next_round(n)
    }
    fn feedback(&mut self, body: &TestBody, feedback: Feedback) {
        self.inner.feedback(body, feedback);
    }
    fn save_state(&self, w: &mut dyn Write) -> Result<(), PersistError> {
        self.inner.save_state(w)
    }
    fn load_state(&mut self, r: &mut dyn Read) -> Result<(), PersistError> {
        self.inner.load_state(r)
    }
}

#[test]
fn interrupted_fleet_resumes_bit_identically() {
    let config = FleetConfig::quick(4, 18).with_batch(2);
    for threads in [1usize, 2] {
        let dir = scratch_dir(&format!("resume-t{threads}"));

        let mut reference_members = make_members();
        let reference = run_observed(&mut reference_members, |b| b, config, threads);
        assert!(reference.result.completed);

        // Interrupt: member 0's fuzzer raises the stop flag during epoch
        // 1's generation; the fleet finishes that epoch and checkpoints.
        // The wrapper delegates `name()`, so the checkpoint's member
        // line-up still matches the fresh members used to resume.
        let stop = StopHandle::new();
        let mut interrupted_members = make_members();
        interrupted_members[0] = FleetMember::new(
            "difuzz-7",
            CoreKind::Rocket,
            Box::new(StopAfterRounds {
                inner: Box::new(DifuzzRtlFuzzer::new(7, 16)),
                rounds_left: 4,
                stop: stop.clone(),
            }),
        );
        let partial = run_observed(
            &mut interrupted_members,
            |b| {
                b.checkpoint(CheckpointPolicy::new(&dir, 1))
                    .control(stop.clone())
            },
            config,
            threads,
        );
        assert!(!partial.result.completed, "stop flag did not fire");
        assert!(!partial.result.merged_curve.is_empty());
        assert!(partial.result.merged_curve.len() < 4);

        // Resume with fresh members: all state comes from the snapshot.
        let snapshot = CheckpointPolicy::latest_fleet_snapshot(&dir).expect("snapshot written");
        let mut resumed_members = make_members();
        let resumed = run_observed(
            &mut resumed_members,
            |b| b.resume_from(snapshot),
            config,
            threads,
        );
        assert!(resumed.result.completed);

        let mut merged = partial.events.clone();
        merged.extend(resumed.events.iter().cloned());
        assert_eq!(
            reference.events, merged,
            "merged event stream diverged at {threads} threads"
        );
        assert_results_match(
            &format!("resume-t{threads}"),
            &reference.result,
            &resumed.result,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_rejects_a_different_member_line_up() {
    let dir = scratch_dir("lineup");
    let config = FleetConfig::quick(2, 9).with_batch(2);
    let mut members = make_members();
    let spec = FleetSpec::builder(config)
        .checkpoint(CheckpointPolicy::new(&dir, 1))
        .build()
        .expect("valid spec");
    run_fleet(&mut members, &spec).expect("fleet runs");
    let snapshot = CheckpointPolicy::latest_fleet_snapshot(&dir).expect("snapshot written");

    // Same member count, different strategy in slot 1.
    let mut imposters = make_members();
    imposters[1] = FleetMember::new(
        "thehuzz-9",
        CoreKind::Rocket,
        Box::new(DifuzzRtlFuzzer::new(9, 16)),
    );
    let resume_spec = FleetSpec::builder(config)
        .resume_from(&snapshot)
        .build()
        .expect("valid spec");
    let err = run_fleet(&mut imposters, &resume_spec).expect_err("line-up mismatch");
    assert!(
        err.to_string().contains("line-up"),
        "unexpected error: {err}"
    );

    // A different fleet budget is rejected too.
    let other_config = FleetConfig::quick(3, 9).with_batch(2);
    let other_spec = FleetSpec::builder(other_config)
        .resume_from(&snapshot)
        .build()
        .expect("valid spec");
    let mut members = make_members();
    let err = run_fleet(&mut members, &other_spec).expect_err("spec mismatch");
    assert!(
        err.to_string().contains("different fleet spec"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_fleet_snapshots_are_rejected_not_trusted() {
    let dir = scratch_dir("corrupt");
    let config = FleetConfig::quick(2, 9).with_batch(2);
    let mut members = make_members();
    let spec = FleetSpec::builder(config)
        .checkpoint(CheckpointPolicy::new(&dir, 1))
        .build()
        .expect("valid spec");
    run_fleet(&mut members, &spec).expect("fleet runs");
    let snapshot = CheckpointPolicy::latest_fleet_snapshot(&dir).expect("snapshot written");

    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snapshot, &bytes).expect("rewrite snapshot");

    let resume_spec = FleetSpec::builder(config)
        .resume_from(&snapshot)
        .build()
        .expect("valid spec");
    let mut members = make_members();
    let err = run_fleet(&mut members, &resume_spec).expect_err("corrupt snapshot rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt") || msg.contains("truncated"),
        "unexpected error: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
