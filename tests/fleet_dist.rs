//! The distributed fleet's determinism contract, end to end: a fleet of
//! worker processes (here: worker threads over real TCP, same protocol)
//! must produce the same non-timing event stream, merged coverage curve
//! and per-member results as the in-process [`run_fleet`] on the same
//! spec — including across a killed-and-respawned worker, and across
//! checkpoints written on one side of the process split and resumed on
//! the other. Slow workers must not stall epoch close once a deadline
//! and quorum are configured.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hfl::baselines::{DifuzzRtlFuzzer, Feedback, Fuzzer, TestBody};
use hfl::campaign::CheckpointPolicy;
use hfl::fleet::{run_fleet, FleetConfig, FleetMember, FleetResult, FleetSpec};
use hfl::fleet_dist::{run_fleet_dist, DistConfig, ThreadLauncher, WorkerFault};
use hfl::obs::{Event, RingSink, SinkHandle};
use hfl::spec::{FuzzerKind, MemberSpec};
use hfl::StopHandle;
use hfl_dut::CoreKind;
use hfl_nn::PersistError;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hfl-fleet-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three cheap, deterministic members with distinct strategies — the
/// same line-up `tests/fleet.rs` uses, expressed as specs so both the
/// in-process and the distributed fleet build identical fuzzers.
fn member_specs() -> Vec<MemberSpec> {
    vec![
        MemberSpec::new(FuzzerKind::Difuzz, 7, CoreKind::Rocket),
        MemberSpec::new(FuzzerKind::TheHuzz, 9, CoreKind::Rocket),
        MemberSpec::new(FuzzerKind::Cascade, 1, CoreKind::Rocket),
    ]
}

fn make_members(specs: &[MemberSpec]) -> Vec<FleetMember> {
    specs.iter().map(MemberSpec::build_member).collect()
}

struct Observed {
    result: FleetResult,
    events: Vec<Event>,
}

fn run_in_process(
    specs: &[MemberSpec],
    configure: impl FnOnce(hfl::fleet::FleetSpecBuilder) -> hfl::fleet::FleetSpecBuilder,
    config: FleetConfig,
) -> Observed {
    let ring = Arc::new(RingSink::new(1_000_000));
    let builder = FleetSpec::builder(config).sink(SinkHandle::new(ring.clone()));
    let spec = configure(builder).build().expect("valid spec");
    let mut members = make_members(specs);
    let result = run_fleet(&mut members, &spec).expect("fleet runs");
    Observed {
        result,
        events: ring.events(),
    }
}

fn run_distributed(
    specs: &[MemberSpec],
    configure: impl FnOnce(hfl::fleet::FleetSpecBuilder) -> hfl::fleet::FleetSpecBuilder,
    config: FleetConfig,
    dist: &DistConfig,
    mut launcher: ThreadLauncher,
) -> Observed {
    let ring = Arc::new(RingSink::new(1_000_000));
    let builder = FleetSpec::builder(config).sink(SinkHandle::new(ring.clone()));
    let spec = configure(builder).build().expect("valid spec");
    let result = run_fleet_dist(specs, &spec, dist, &mut launcher).expect("distributed fleet runs");
    Observed {
        result,
        events: ring.events(),
    }
}

fn assert_results_match(tag: &str, a: &FleetResult, b: &FleetResult) {
    assert_eq!(a.merged_curve, b.merged_curve, "{tag}: merged curve");
    assert_eq!(a.budgets, b.budgets, "{tag}: budget vector");
    assert_eq!(a.corpus.entries(), b.corpus.entries(), "{tag}: corpus");
    assert_eq!(a.corpus.stats(), b.corpus.stats(), "{tag}: corpus stats");
    assert_eq!(a.members.len(), b.members.len(), "{tag}: member count");
    for (ma, mb) in a.members.iter().zip(&b.members) {
        assert_eq!(ma.name, mb.name, "{tag}");
        assert_eq!(ma.fuzzer, mb.fuzzer, "{tag}: {} fuzzer", ma.name);
        assert_eq!(ma.cases, mb.cases, "{tag}: {} cases", ma.name);
        assert_eq!(ma.curve, mb.curve, "{tag}: {} curve", ma.name);
        assert_eq!(ma.cumulative, mb.cumulative, "{tag}: {} coverage", ma.name);
        assert_eq!(ma.signatures, mb.signatures, "{tag}: {} sigs", ma.name);
        assert_eq!(
            ma.first_detection, mb.first_detection,
            "{tag}: {} detections",
            ma.name
        );
        assert_eq!(
            ma.instructions_executed, mb.instructions_executed,
            "{tag}: {} retired",
            ma.name
        );
        assert_eq!(
            ma.aborted_cases, mb.aborted_cases,
            "{tag}: {} aborts",
            ma.name
        );
    }
}

#[test]
fn distributed_fleet_is_bit_identical_to_in_process() {
    let config = FleetConfig::quick(3, 18).with_batch(2);
    let specs = member_specs();
    let reference = run_in_process(&specs, |b| b, config);
    assert!(reference.result.completed);
    assert!(reference.events.iter().all(|e| !e.is_timing()));
    assert!(!reference.events.is_empty());

    let dist = run_distributed(
        &specs,
        |b| b,
        config,
        &DistConfig::default(),
        ThreadLauncher::new(),
    );
    assert!(dist.result.completed);
    assert_eq!(
        reference.events, dist.events,
        "event stream diverged across the process split"
    );
    assert_results_match("distributed", &reference.result, &dist.result);
}

#[test]
fn a_killed_worker_respawns_and_the_stream_does_not_change() {
    let config = FleetConfig::quick(3, 18).with_batch(2);
    let specs = member_specs();
    let reference = run_in_process(&specs, |b| b, config);

    // Worker 1 drops its connection the instant epoch 1's grant arrives
    // — the coordinator-side equivalent of a SIGKILL mid-epoch. The
    // respawned worker replays the grant from the authoritative state
    // blobs, so nothing observable may change.
    let launcher = ThreadLauncher::new().with_fault(
        1,
        WorkerFault {
            die_at_epoch: Some(1),
            ..WorkerFault::default()
        },
    );
    let dist = run_distributed(&specs, |b| b, config, &DistConfig::default(), launcher);
    assert!(dist.result.completed);
    assert_eq!(
        reference.events, dist.events,
        "event stream diverged after a worker was killed and respawned"
    );
    assert_results_match("respawn", &reference.result, &dist.result);
}

#[test]
fn slow_workers_do_not_stall_epoch_close() {
    // Worker 1 stalls for far longer than the whole run should take.
    // With a 300 ms epoch deadline and a quorum one reporter satisfies,
    // every epoch must close without it, the fleet must complete, and
    // the scheduler's floor must keep the silent member schedulable.
    let sleep_millis = 30_000u64;
    let config = FleetConfig::quick(3, 8).with_batch(2);
    let specs = vec![
        MemberSpec::new(FuzzerKind::Difuzz, 7, CoreKind::Rocket),
        MemberSpec::new(FuzzerKind::Cascade, 1, CoreKind::Rocket),
    ];
    let dist_cfg = DistConfig {
        epoch_deadline_millis: 300,
        quorum_percent: 33,
        ..DistConfig::default()
    };
    let launcher = ThreadLauncher::new().with_fault(
        1,
        WorkerFault {
            sleep_at_epoch: Some(0),
            sleep_millis,
            ..WorkerFault::default()
        },
    );
    let started = Instant::now();
    let observed = run_distributed(&specs, |b| b, config, &dist_cfg, launcher);
    let elapsed = started.elapsed();
    assert!(
        observed.result.completed,
        "deadline epochs did not complete"
    );
    assert!(
        elapsed < Duration::from_millis(sleep_millis),
        "epoch close stalled behind the slow worker ({elapsed:?})"
    );
    // The fast member did all the reported work; the slow member never
    // reported, yet the budget vector still owes it at least the floor.
    assert_eq!(observed.result.budgets.iter().sum::<u64>(), 8);
    assert!(
        observed.result.budgets[1] >= 1,
        "slow member starved: {:?}",
        observed.result.budgets
    );
    assert_eq!(observed.result.merged_curve.len(), 3);
}

/// Delegates to an inner fuzzer and raises the fleet's stop flag after a
/// fixed number of generation rounds (same wrapper as `tests/fleet.rs`).
struct StopAfterRounds {
    inner: Box<dyn Fuzzer>,
    rounds_left: u32,
    stop: StopHandle,
}

impl Fuzzer for StopAfterRounds {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn next_case(&mut self) -> TestBody {
        self.inner.next_case()
    }
    fn next_round(&mut self, n: usize) -> Vec<TestBody> {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.stop.request_stop();
            }
        }
        self.inner.next_round(n)
    }
    fn feedback(&mut self, body: &TestBody, feedback: Feedback) {
        self.inner.feedback(body, feedback);
    }
    fn save_state(&self, w: &mut dyn Write) -> Result<(), PersistError> {
        self.inner.save_state(w)
    }
    fn load_state(&mut self, r: &mut dyn Read) -> Result<(), PersistError> {
        self.inner.load_state(r)
    }
}

#[test]
fn distributed_fleet_resumes_an_in_process_checkpoint_bit_identically() {
    let dir = scratch_dir("resume");
    let config = FleetConfig::quick(4, 18).with_batch(2);
    let specs = member_specs();
    let reference = run_in_process(&specs, |b| b, config);
    assert!(reference.result.completed);

    // Interrupt an *in-process* fleet mid-run; member 0's wrapper
    // delegates `name()`, so the checkpoint's line-up matches the specs.
    let stop = StopHandle::new();
    let ring = Arc::new(RingSink::new(1_000_000));
    let spec = FleetSpec::builder(config)
        .sink(SinkHandle::new(ring.clone()))
        .checkpoint(CheckpointPolicy::new(&dir, 1))
        .control(stop.clone())
        .build()
        .expect("valid spec");
    let mut interrupted = make_members(&specs);
    interrupted[0] = FleetMember::new(
        "difuzz-7",
        CoreKind::Rocket,
        Box::new(StopAfterRounds {
            inner: Box::new(DifuzzRtlFuzzer::new(7, 16)),
            rounds_left: 4,
            stop: stop.clone(),
        }),
    );
    let partial = run_fleet(&mut interrupted, &spec).expect("fleet runs");
    assert!(!partial.completed, "stop flag did not fire");
    let partial_events = ring.events();
    assert!(partial.merged_curve.len() < 4);

    // Resume the snapshot on the *distributed* runtime: the stream must
    // pick up exactly where the in-process fleet left off.
    let snapshot = CheckpointPolicy::latest_fleet_snapshot(&dir).expect("snapshot written");
    let resumed = run_distributed(
        &specs,
        |b| b.resume_from(snapshot),
        config,
        &DistConfig::default(),
        ThreadLauncher::new(),
    );
    assert!(resumed.result.completed);

    let mut merged = partial_events;
    merged.extend(resumed.events.iter().cloned());
    assert_eq!(
        reference.events, merged,
        "stream diverged across checkpoint + process split"
    );
    assert_results_match("cross-runtime resume", &reference.result, &resumed.result);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_process_fleet_reads_a_distributed_checkpoint() {
    // The distributed coordinator writes its snapshots from the same
    // serialised member states the wire carries; the in-process fleet
    // must accept them and restore the identical fleet state.
    let dir = scratch_dir("dist-ckpt");
    let config = FleetConfig::quick(2, 12).with_batch(2);
    let specs = member_specs();
    let dist = run_distributed(
        &specs,
        |b| b.checkpoint(CheckpointPolicy::new(&dir, 1)),
        config,
        &DistConfig::default(),
        ThreadLauncher::new(),
    );
    assert!(dist.result.completed);

    // The final snapshot sits at the epoch budget, so the resumed fleet
    // returns the restored state without running further epochs.
    let snapshot = CheckpointPolicy::latest_fleet_snapshot(&dir).expect("snapshot written");
    let resumed = run_in_process(&specs, |b| b.resume_from(snapshot), config);
    assert!(resumed.result.completed);
    assert_results_match("dist checkpoint", &dist.result, &resumed.result);
    let _ = std::fs::remove_dir_all(&dir);
}
