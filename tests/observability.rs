//! The observability layer's determinism contract, end to end: telemetry
//! must never change campaign results, and the non-timing event stream
//! must be bit-identical at any thread count. Also exercises the JSONL
//! file sink round trip and the per-round replay table against a real
//! campaign.

use std::sync::Arc;

use hfl::baselines::DifuzzRtlFuzzer;
use hfl::campaign::{run_campaign, CampaignConfig, CampaignResult, CampaignSpec};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl::obs::{read_jsonl, replay_rounds, Event, JsonlSink, RingSink, SinkHandle};
use hfl_dut::CoreKind;

fn config() -> CampaignConfig {
    CampaignConfig::quick(40).with_batch(4)
}

fn run_with_ring(threads: usize) -> (CampaignResult, Vec<Event>) {
    let ring = Arc::new(RingSink::new(100_000));
    let mut fuzzer = DifuzzRtlFuzzer::new(7, 12);
    let spec = CampaignSpec::builder(CoreKind::Rocket, config())
        .threads(threads)
        .sink(SinkHandle::new(ring.clone()))
        .build()
        .expect("valid spec");
    let result = run_campaign(&mut fuzzer, &spec).expect("campaign runs");
    (result, ring.events())
}

/// The event stream minus wall-clock events — the part under the
/// determinism contract.
fn non_timing(events: &[Event]) -> Vec<Event> {
    events.iter().filter(|e| !e.is_timing()).cloned().collect()
}

#[test]
fn event_stream_is_bit_identical_at_any_thread_count() {
    let (r1, e1) = run_with_ring(1);
    let (r2, e2) = run_with_ring(2);
    let (r8, e8) = run_with_ring(8);

    for (result, label) in [(&r2, "2"), (&r8, "8")] {
        assert_eq!(r1.curve, result.curve, "curve changed at {label} threads");
        assert_eq!(r1.signatures, result.signatures);
        assert_eq!(r1.first_detection, result.first_detection);
        assert_eq!(r1.instructions_executed, result.instructions_executed);
    }
    let n1 = non_timing(&e1);
    assert_eq!(n1, non_timing(&e2), "event stream changed at 2 threads");
    assert_eq!(n1, non_timing(&e8), "event stream changed at 8 threads");
    // Timing events exist but are excluded from the comparison — exactly
    // one PoolOccupancy per round, at every thread count.
    let rounds = e1
        .iter()
        .filter(|e| matches!(e, Event::RoundEnd { .. }))
        .count();
    for events in [&e1, &e2, &e8] {
        let timing = events.iter().filter(|e| e.is_timing()).count();
        assert_eq!(timing, rounds);
    }
}

#[test]
fn telemetry_does_not_change_results() {
    // A silent (default NullSink) campaign and a fully-instrumented one
    // must agree on everything the determinism contract covers — for the
    // learning fuzzer too, whose PredictorEval path must observe without
    // perturbing the models.
    let run = |sink: Option<SinkHandle>| {
        let mut cfg = HflConfig::small().with_seed(3);
        cfg.generator.hidden = 16;
        cfg.predictor.hidden = 16;
        cfg.test_len = 6;
        let mut hfl = HflFuzzer::new(cfg);
        let mut builder = CampaignSpec::builder(CoreKind::Rocket, config());
        if let Some(sink) = sink {
            builder = builder.sink(sink);
        }
        let spec = builder.build().expect("valid spec");
        run_campaign(&mut hfl, &spec).expect("campaign runs")
    };
    let silent = run(None);
    let ring = Arc::new(RingSink::new(100_000));
    let observed = run(Some(SinkHandle::new(ring.clone())));

    assert_eq!(silent.curve, observed.curve);
    assert_eq!(silent.signatures, observed.signatures);
    assert_eq!(silent.first_detection, observed.first_detection);
    assert_eq!(silent.instructions_executed, observed.instructions_executed);
    // The observed run actually produced learner telemetry.
    let events = ring.events();
    assert!(events.iter().any(|e| matches!(e, Event::PpoUpdate { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::PredictorEval { .. })));
}

#[test]
fn jsonl_log_replays_the_coverage_curve() {
    let path = std::env::temp_dir().join(format!("hfl-obs-test-{}.jsonl", std::process::id()));
    let sink = SinkHandle::new(Arc::new(JsonlSink::create(&path).expect("create log")));
    let mut fuzzer = DifuzzRtlFuzzer::new(11, 12);
    let spec = CampaignSpec::builder(CoreKind::Rocket, config())
        .threads(2)
        .sink(sink)
        .build()
        .expect("valid spec");
    let result = run_campaign(&mut fuzzer, &spec).expect("campaign runs");

    let events = read_jsonl(&path).expect("log parses");
    std::fs::remove_file(&path).ok();
    assert!(!events.is_empty());

    // Per-case events cover the whole campaign in order.
    let cases: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::CaseExecuted { case, .. } => Some(*case),
            _ => None,
        })
        .collect();
    assert_eq!(cases, (1..=40).collect::<Vec<u64>>());

    // The replayed table reconstructs the campaign's own curve at every
    // sample boundary (sample_every = 1 for quick(40), so every curve
    // sample lands on a case; rounds end every `batch` cases).
    let rows = replay_rounds(&events);
    assert_eq!(rows.len(), 10, "40 cases / batch 4");
    let end = rows.last().expect("non-empty");
    let (c, l, f) = result.final_counts();
    assert_eq!(
        (end.cases, end.condition, end.line, end.fsm),
        (40, c as u64, l as u64, f as u64)
    );
    assert_eq!(end.unique_signatures, result.unique_signatures as u64);
    assert_eq!(end.retired, result.instructions_executed);
    for row in &rows {
        let sample = result
            .curve
            .iter()
            .find(|s| s.cases == row.cases)
            .expect("round boundary is a curve sample");
        assert_eq!(
            (row.condition, row.line, row.fsm),
            (
                sample.condition as u64,
                sample.line as u64,
                sample.fsm as u64
            ),
            "replay diverged at {} cases",
            row.cases
        );
    }

    // Metrics snapshot rode along on the result.
    for phase in [
        "phase.generate.seconds",
        "phase.execute.seconds",
        "phase.difftest.seconds",
        "phase.train.seconds",
    ] {
        let hist = result
            .metrics
            .histogram(phase)
            .unwrap_or_else(|| panic!("{phase} missing"));
        assert_eq!(hist.count, 10, "{phase}: one observation per round");
        assert!(hist.sum >= 0.0 && hist.sum.is_finite());
    }
    assert_eq!(result.metrics.counter("campaign.cases"), 40);
    assert_eq!(result.metrics.counter("campaign.rounds"), 10);
}

/// The predecode cache surfaces lifetime hit/miss counters on the
/// metrics snapshot. At one thread the worker schedule is fixed, so the
/// split itself is deterministic — and whatever the schedule, the totals
/// must account for exactly one cache lookup per executed case.
#[test]
fn predecode_cache_metrics_ride_on_the_snapshot() {
    let run = || {
        let mut fuzzer = DifuzzRtlFuzzer::new(5, 12);
        let spec = CampaignSpec::builder(CoreKind::Rocket, config())
            .threads(1)
            .build()
            .expect("valid spec");
        let result = run_campaign(&mut fuzzer, &spec).expect("campaign runs");
        (
            result.metrics.counter("sim.predecode.hits"),
            result.metrics.counter("sim.predecode.misses"),
        )
    };
    let (hits, misses) = run();
    assert_eq!(hits + misses, 40, "one cache lookup per executed case");
    assert!(misses >= 1, "first sight of a body must miss");
    assert_eq!((hits, misses), run(), "split is deterministic at 1 thread");
}

/// Guard for interpreter changes: a pinned campaign spec must replay the
/// checked-in golden non-timing JSONL stream byte for byte. The golden
/// file was produced by the original per-step fetch+decode interpreters,
/// so any engine swap (predecode, dispatch, batching) that perturbs a
/// single event — coverage gained, retired counts, mismatch signatures —
/// fails here before it can corrupt a campaign.
///
/// Regenerate deliberately with `HFL_UPDATE_GOLDEN=1 cargo test -p hfl
/// --test observability golden_event_stream`.
#[test]
fn golden_event_stream_replays_byte_for_byte() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/campaign_events.jsonl"
    );
    let ring = Arc::new(RingSink::new(100_000));
    let mut fuzzer = DifuzzRtlFuzzer::new(1311, 10);
    let spec = CampaignSpec::builder(CoreKind::Cva6, CampaignConfig::quick(30).with_batch(6))
        .threads(2)
        .sink(SinkHandle::new(ring.clone()))
        .build()
        .expect("valid spec");
    run_campaign(&mut fuzzer, &spec).expect("campaign runs");
    let got: String = non_timing(&ring.events())
        .iter()
        .map(|e| e.to_json() + "\n")
        .collect();
    if std::env::var("HFL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &got).expect("write golden stream");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden stream exists (see test docs)");
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    assert_eq!(
        got_lines.len(),
        want_lines.len(),
        "event count diverged from the golden stream"
    );
    for (i, (g, w)) in got_lines.iter().zip(&want_lines).enumerate() {
        assert_eq!(g, w, "golden stream diverged at event {i}");
    }
}
