//! The two-hart system configuration, end to end: scheduler determinism
//! (fixed `sched_seed` ⇒ bit-identical non-timing event stream at any
//! thread count, and across checkpoint/resume), the clean-config
//! DUT/reference lockstep property, and campaign-level detection plus
//! minimisation of every concurrency defect class.

use std::sync::Arc;

use hfl::baselines::{DifuzzRtlFuzzer, Feedback, Fuzzer, InterleaveFuzzer, TestBody};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignResult, CampaignSpec, CheckpointPolicy};
use hfl::harness::Executor;
use hfl::obs::{Event, RingSink, SinkHandle};
use hfl::poc::poc_body_for;
use hfl::triage::minimize_body;
use hfl_dut::{bugs, CoreKind};
use hfl_grm::cpu::Quirks;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn non_timing(events: &[Event]) -> Vec<Event> {
    events.iter().filter(|e| !e.is_timing()).cloned().collect()
}

fn mhart_config() -> CampaignConfig {
    CampaignConfig::quick(24).with_batch(4)
}

fn run_mhart_campaign(threads: usize) -> (CampaignResult, Vec<Event>) {
    let ring = Arc::new(RingSink::new(100_000));
    let mut fuzzer = InterleaveFuzzer::new(5, DifuzzRtlFuzzer::new(7, 10));
    let spec = CampaignSpec::builder(CoreKind::Rocket, mhart_config())
        .mhart(true)
        .threads(threads)
        .sink(SinkHandle::new(ring.clone()))
        .build()
        .expect("valid spec");
    let result = run_campaign(&mut fuzzer, &spec).expect("campaign runs");
    (result, ring.events())
}

#[test]
fn mhart_event_stream_is_bit_identical_at_any_thread_count() {
    let (r1, e1) = run_mhart_campaign(1);
    let (r2, e2) = run_mhart_campaign(2);
    let (r8, e8) = run_mhart_campaign(8);
    for (result, label) in [(&r2, "2"), (&r8, "8")] {
        assert_eq!(r1.curve, result.curve, "curve changed at {label} threads");
        assert_eq!(r1.signatures, result.signatures);
        assert_eq!(r1.first_detection, result.first_detection);
        assert_eq!(r1.instructions_executed, result.instructions_executed);
    }
    let n1 = non_timing(&e1);
    assert_eq!(n1, non_timing(&e2), "event stream changed at 2 threads");
    assert_eq!(n1, non_timing(&e8), "event stream changed at 8 threads");
}

#[test]
fn mhart_campaign_resumes_bit_identically_from_a_checkpoint() {
    // The interrupted+resumed pair must replay the uninterrupted run's
    // non-timing stream and results (the crash_resume contract, in the
    // two-hart configuration — schedules are part of the replayed state).
    let dir = std::env::temp_dir().join(format!("hfl-mhart-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let make_fuzzer = || InterleaveFuzzer::new(3, DifuzzRtlFuzzer::new(11, 10));
    let run = |fuzzer: &mut dyn Fuzzer,
               configure: &dyn Fn(
        hfl::campaign::CampaignSpecBuilder,
    ) -> hfl::campaign::CampaignSpecBuilder| {
        let ring = Arc::new(RingSink::new(100_000));
        let builder = CampaignSpec::builder(CoreKind::Rocket, mhart_config())
            .mhart(true)
            .sink(SinkHandle::new(ring.clone()));
        let spec = configure(builder).build().expect("valid spec");
        let result = run_campaign(fuzzer, &spec).expect("campaign runs");
        (result, ring.events())
    };

    let (reference, reference_events) = run(&mut make_fuzzer(), &|b| b);
    assert!(reference.completed);

    let stop = hfl::StopHandle::new();
    let stop_for_fuzzer = stop.clone();
    // Interrupt after two generation rounds, mid-campaign.
    struct StopAfter<F> {
        inner: F,
        rounds_left: u32,
        stop: hfl::StopHandle,
    }
    impl<F: Fuzzer> Fuzzer for StopAfter<F> {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn next_case(&mut self) -> TestBody {
            self.inner.next_case()
        }
        fn next_round(&mut self, n: usize) -> Vec<TestBody> {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    self.stop.request_stop();
                }
            }
            self.inner.next_round(n)
        }
        fn feedback(&mut self, body: &TestBody, feedback: Feedback) {
            self.inner.feedback(body, feedback);
        }
        fn save_state(&self, w: &mut dyn std::io::Write) -> Result<(), hfl_nn::PersistError> {
            self.inner.save_state(w)
        }
        fn load_state(&mut self, r: &mut dyn std::io::Read) -> Result<(), hfl_nn::PersistError> {
            self.inner.load_state(r)
        }
    }
    let mut interrupted = StopAfter {
        inner: make_fuzzer(),
        rounds_left: 2,
        stop: stop_for_fuzzer,
    };
    let (partial, partial_events) = run(&mut interrupted, &|b| {
        b.checkpoint(CheckpointPolicy::new(&dir, 1))
            .control(stop.clone())
    });
    assert!(!partial.completed, "the stop flag did not fire");

    let snapshot = CheckpointPolicy::latest_snapshot(&dir).expect("snapshot written");
    let (resumed, resumed_events) = run(&mut make_fuzzer(), &|b| b.resume_from(snapshot.clone()));
    assert!(resumed.completed);

    let mut merged = non_timing(&partial_events);
    merged.extend(non_timing(&resumed_events));
    assert_eq!(
        non_timing(&reference_events),
        merged,
        "merged mhart event stream diverged across resume"
    );
    assert_eq!(reference.curve, resumed.curve);
    assert_eq!(reference.signatures, resumed.signatures);
    assert_eq!(reference.cumulative, resumed.cumulative);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replays interleaving seeds over one defect class's PoC body — the
/// degenerate schedule-space fuzzer the campaign-level detection test
/// drives (body fixed, schedule searched).
struct SeedSweepFuzzer {
    bug_id: &'static str,
    next_seed: u64,
}

impl Fuzzer for SeedSweepFuzzer {
    fn name(&self) -> &'static str {
        "SeedSweep"
    }
    fn next_case(&mut self) -> TestBody {
        let seed = self.next_seed;
        self.next_seed += 1;
        poc_body_for(self.bug_id, seed)
    }
    fn feedback(&mut self, _body: &TestBody, _feedback: Feedback) {}
}

#[test]
fn two_hart_campaign_finds_and_minimises_every_concurrency_class() {
    for bug in bugs::CATALOG.iter().filter(|b| b.concurrency) {
        let mut quirks = Quirks::default();
        bugs::enable(&mut quirks, bug.id, CoreKind::Rocket);
        let mut fuzzer = SeedSweepFuzzer {
            bug_id: bug.id,
            next_seed: 0,
        };
        let spec = CampaignSpec::builder(CoreKind::Rocket, CampaignConfig::quick(64).with_batch(8))
            .mhart(true)
            .quirks(quirks.clone())
            .build()
            .expect("valid spec");
        let result = run_campaign(&mut fuzzer, &spec).expect("campaign runs");
        assert!(
            result.unique_signatures >= 1,
            "{}: campaign found no PoC in 64 interleavings",
            bug.id
        );
        // The trigger corpus names carry the interleaving seed — without
        // it the PoC would not replay.
        let entry = &result.trigger_corpus.entries()[0];
        let (_, seed_hex) = entry
            .name
            .split_once("+seed")
            .unwrap_or_else(|| panic!("{}: PoC name {:?} lacks its seed", bug.id, entry.name));
        let seed = u64::from_str_radix(seed_hex, 16).expect("seed parses");

        // Minimisation holds that seed fixed and the result still triggers.
        let mut executor = Executor::builder(CoreKind::Rocket)
            .quirks(quirks)
            .mhart(true)
            .build();
        let body = poc_body_for(bug.id, seed);
        let case = executor.run(&body);
        assert!(
            !case.mismatches.is_empty(),
            "{}: corpus seed replays",
            bug.id
        );
        let signature = case.mismatches[0].signature();
        let minimized = minimize_body(&mut executor, &body, signature)
            .unwrap_or_else(|| panic!("{}: PoC does not reproduce for triage", bug.id));
        assert_eq!(minimized.sched_seed, Some(seed));
        assert!(!minimized.body.is_empty());
        let replay = TestBody::Mhart {
            body: minimized.body.clone(),
            sched_seed: seed,
        };
        assert!(
            executor
                .run(&replay)
                .mismatches
                .iter()
                .any(|m| m.signature() == signature),
            "{}: minimised case lost the defect",
            bug.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lockdown: a defect-free two-hart configuration never diverges from
    /// the sequential reference, whatever the body or the interleaving.
    #[test]
    fn clean_two_hart_config_stays_in_lockstep(body_seed in any::<u64>(), sched_seed in any::<u64>(), len in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(body_seed);
        let body: Vec<_> = (0..len)
            .map(|_| hfl::baselines::random_instruction(&mut rng))
            .collect();
        let mut executor = Executor::builder(CoreKind::Rocket)
            .quirks(Quirks::default())
            .mhart(true)
            .build();
        let result = executor.run(&TestBody::Mhart { body, sched_seed });
        prop_assert!(
            result.mismatches.is_empty(),
            "clean config diverged: {:?}",
            result.mismatches
        );
    }
}
