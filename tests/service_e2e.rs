//! End-to-end service tests: submit jobs to an in-process `hfl-serve`
//! daemon over real TCP, stream their event protocols via SSE, download
//! artifacts, and prove the two determinism contracts:
//!
//! 1. the SSE stream every subscriber receives is bit-identical (timing
//!    events aside) to the same spec run in-process with a plain
//!    `JsonlSink` — at two concurrent jobs with two subscribers each;
//! 2. a job interrupted by a daemon drain (the SIGTERM path) and
//!    resumed by a restarted daemon produces a combined event log and
//!    coverage curve bit-identical to an uninterrupted run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, RunConfig};
use hfl::fleet::{run_fleet, FleetConfig, FleetMember, FleetSpec};
use hfl::json::Fields;
use hfl::obs::JsonlSink;
use hfl::SinkHandle;
use hfl_dut::CoreKind;
use hfl_serve::jobs::make_fuzzer;
use hfl_serve::{http_request, spawn, DaemonConfig, SseParser};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hfl-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Keeps the JSONL lines that take part in determinism comparisons
/// (everything but wall-clock `pool_occupancy` telemetry).
fn non_timing(lines: &str) -> Vec<String> {
    lines
        .lines()
        .filter(|l| !l.is_empty() && !l.contains("\"type\":\"pool_occupancy\""))
        .map(str::to_owned)
        .collect()
}

/// Subscribes to a job's SSE stream and collects every data frame until
/// the server's `end` frame (or panics after `deadline`).
fn subscribe(addr: &str, id: u64, deadline: Duration) -> (Vec<String>, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    write!(
        stream,
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n"
    )
    .expect("request");
    let started = Instant::now();
    let mut parser = SseParser::new();
    let mut lines = Vec::new();
    let mut dropped = 0;
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    let mut head_done = false;
    loop {
        assert!(
            started.elapsed() < deadline,
            "job {id}: no end frame within {deadline:?} ({} lines so far)",
            lines.len()
        );
        let n = match stream.read(&mut buf) {
            Ok(0) => panic!("job {id}: connection closed before end frame"),
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("job {id}: read: {e}"),
        };
        let chunk: Vec<u8> = if head_done {
            buf[..n].to_vec()
        } else {
            // Strip the HTTP response head before feeding the SSE parser.
            head.extend_from_slice(&buf[..n]);
            let Some(pos) = head.windows(4).position(|w| w == b"\r\n\r\n") else {
                continue;
            };
            let head_text = String::from_utf8_lossy(&head[..pos]).to_string();
            assert!(head_text.contains("200"), "job {id}: SSE head: {head_text}");
            assert!(head_text.contains("text/event-stream"), "{head_text}");
            head_done = true;
            head.split_off(pos + 4)
        };
        for frame in parser.push(&chunk) {
            match frame.event.as_deref() {
                None => lines.push(frame.data),
                Some("lag") => {
                    dropped += Fields::parse(&frame.data)
                        .and_then(|f| f.u64("missed"))
                        .unwrap_or(0);
                }
                Some("end") => return (lines, dropped),
                Some(other) => panic!("job {id}: unexpected event {other:?}"),
            }
        }
    }
}

/// Polls `/jobs/<id>` until its status is in `want` (or panics).
fn wait_status(addr: &str, id: u64, want: &[&str], deadline: Duration) -> Fields {
    let started = Instant::now();
    loop {
        let (status, body) =
            http_request(addr, "GET", &format!("/jobs/{id}"), None).expect("status request");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let text = String::from_utf8_lossy(&body).to_string();
        let fields = Fields::parse(text.trim()).expect("status json");
        let current = fields.str("status").expect("status field").to_owned();
        if want.contains(&current.as_str()) {
            return fields;
        }
        assert!(
            started.elapsed() < deadline,
            "job {id}: stuck at {current:?}, wanted {want:?}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// The reference: the same campaign spec run in-process.
fn offline_campaign(dir: &Path, fuzzer: &str, seed: u64, cases: u64, batch: usize) -> Vec<String> {
    let log = dir.join("offline-campaign.jsonl");
    let sink = SinkHandle::new(Arc::new(JsonlSink::create(&log).expect("sink")));
    let config = CampaignConfig {
        cases,
        sample_every: cases,
        run: RunConfig::quick().with_batch(batch),
    };
    let spec = CampaignSpec::builder(CoreKind::Rocket, config)
        .sink(sink)
        .build()
        .expect("spec");
    let mut f = make_fuzzer(fuzzer, seed).expect("fuzzer");
    run_campaign(f.as_mut(), &spec).expect("offline campaign");
    non_timing(&std::fs::read_to_string(&log).expect("offline log"))
}

/// The reference fleet run, mirroring the serve-side member convention.
fn offline_fleet(
    dir: &Path,
    members: &[(&str, u64)],
    epochs: u64,
    cases_per_epoch: u64,
    batch: usize,
) -> Vec<String> {
    let log = dir.join("offline-fleet.jsonl");
    let sink = SinkHandle::new(Arc::new(JsonlSink::create(&log).expect("sink")));
    let config = FleetConfig {
        epochs,
        cases_per_epoch,
        run: RunConfig::quick().with_batch(batch),
    };
    let spec = FleetSpec::builder(config).sink(sink).build().expect("spec");
    let mut fleet: Vec<FleetMember> = members
        .iter()
        .map(|(name, seed)| {
            FleetMember::new(
                format!("{name}-{seed}"),
                CoreKind::Rocket,
                make_fuzzer(name, *seed).expect("fuzzer"),
            )
        })
        .collect();
    run_fleet(&mut fleet, &spec).expect("offline fleet");
    non_timing(&std::fs::read_to_string(&log).expect("offline log"))
}

#[test]
fn concurrent_jobs_stream_bit_identical_to_in_process_runs() {
    let data_dir = temp_dir("stream");
    let shutdown = Arc::new(AtomicBool::new(false));
    let (addr, daemon) = spawn(
        DaemonConfig::new("127.0.0.1:0", data_dir.join("serve")).with_workers(2),
        Arc::clone(&shutdown),
    )
    .expect("daemon");
    let addr = addr.to_string();

    let (status, body) = http_request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    // Submit one campaign and one fleet job; both run concurrently on
    // the two workers.
    let campaign_spec =
        r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","seed":7,"cases":40,"batch":4}"#;
    let (status, body) = http_request(&addr, "POST", "/jobs", Some(campaign_spec)).expect("submit");
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let campaign_id = Fields::parse(String::from_utf8_lossy(&body).trim())
        .and_then(|f| f.u64("id"))
        .expect("campaign id");

    let fleet_spec = r#"{"type":"job_spec","kind":"fleet","members":"difuzz:5,cascade:1","epochs":2,"cases_per_epoch":16,"batch":4}"#;
    let (status, body) = http_request(&addr, "POST", "/jobs", Some(fleet_spec)).expect("submit");
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let fleet_id = Fields::parse(String::from_utf8_lossy(&body).trim())
        .and_then(|f| f.u64("id"))
        .expect("fleet id");

    // Two subscribers per job, all streaming concurrently.
    let deadline = Duration::from_secs(120);
    let mut readers = Vec::new();
    for id in [campaign_id, campaign_id, fleet_id, fleet_id] {
        let addr = addr.clone();
        readers.push(thread::spawn(move || subscribe(&addr, id, deadline)));
    }
    let streams: Vec<(Vec<String>, u64)> = readers
        .into_iter()
        .map(|r| r.join().expect("subscriber"))
        .collect();

    // Both subscribers of a job saw the identical stream, no drops.
    assert_eq!(streams[0].0, streams[1].0, "campaign subscribers diverged");
    assert_eq!(streams[2].0, streams[3].0, "fleet subscribers diverged");
    for (_, dropped) in &streams {
        assert_eq!(*dropped, 0, "ample hub capacity, nothing may drop");
    }

    // Jobs completed.
    let campaign_status = wait_status(&addr, campaign_id, &["done"], Duration::from_secs(30));
    assert_eq!(campaign_status.str("kind"), Some("campaign"));
    wait_status(&addr, fleet_id, &["done"], Duration::from_secs(30));

    // The SSE stream matches the in-process reference bit for bit
    // (timing events aside).
    let offline = offline_campaign(&data_dir, "difuzz", 7, 40, 4);
    let campaign_stream: Vec<String> = non_timing(&streams[0].0.join("\n"));
    assert_eq!(campaign_stream, offline, "campaign stream != offline run");

    let offline = offline_fleet(&data_dir, &[("difuzz", 5), ("cascade", 1)], 2, 16, 4);
    let fleet_stream: Vec<String> = non_timing(&streams[2].0.join("\n"));
    assert_eq!(fleet_stream, offline, "fleet stream != offline run");

    // The downloadable log equals the stream, byte for byte.
    let (status, body) =
        http_request(&addr, "GET", &format!("/jobs/{campaign_id}/log"), None).expect("log");
    assert_eq!(status, 200);
    let log_lines: Vec<String> = String::from_utf8_lossy(&body)
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(log_lines, streams[0].0, "events.jsonl != SSE stream");

    // Artifacts: the snapshot container and the PoC quarantine corpus.
    let (status, body) = http_request(
        &addr,
        "GET",
        &format!("/jobs/{campaign_id}/checkpoint"),
        None,
    )
    .expect("checkpoint");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(!body.is_empty(), "snapshot container must not be empty");
    let (status, _) = http_request(&addr, "GET", &format!("/jobs/{fleet_id}/checkpoint"), None)
        .expect("fleet ckpt");
    assert_eq!(status, 200);
    let (status, _) =
        http_request(&addr, "GET", &format!("/jobs/{campaign_id}/poc"), None).expect("poc request");
    assert!(
        status == 200 || status == 404,
        "poc endpoint must answer cleanly, got {status}"
    );

    // Error paths: bad spec -> 400, unknown job -> 404, cancel of a
    // finished job -> 409.
    let (status, _) =
        http_request(&addr, "POST", "/jobs", Some("{\"type\":\"nope\"}")).expect("bad");
    assert_eq!(status, 400);
    let (status, _) = http_request(&addr, "GET", "/jobs/999", None).expect("missing");
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "POST", &format!("/jobs/{campaign_id}/cancel"), None)
        .expect("late cancel");
    assert_eq!(status, 409);

    shutdown.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread").expect("daemon run");
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn drained_job_resumes_bit_identical_after_restart() {
    let data_dir = temp_dir("drain");
    let serve_dir = data_dir.join("serve");

    // First daemon: submit a long campaign, stream a few rounds, then
    // drain (the SIGTERM path sets the same flag).
    let shutdown = Arc::new(AtomicBool::new(false));
    let (addr, daemon) = spawn(
        DaemonConfig::new("127.0.0.1:0", &serve_dir).with_workers(1),
        Arc::clone(&shutdown),
    )
    .expect("daemon");
    let addr = addr.to_string();
    let spec = r#"{"type":"job_spec","kind":"campaign","fuzzer":"difuzz","seed":11,"cases":300,"batch":2,"checkpoint_every":1}"#;
    let (status, body) = http_request(&addr, "POST", "/jobs", Some(spec)).expect("submit");
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let id = Fields::parse(String::from_utf8_lossy(&body).trim())
        .and_then(|f| f.u64("id"))
        .expect("id");

    // Wait until the job is demonstrably mid-run (some events exist).
    let started = Instant::now();
    loop {
        let fields = wait_status(&addr, id, &["running", "done"], Duration::from_secs(30));
        assert_ne!(
            fields.str("status"),
            Some("done"),
            "budget too small to drain mid-run"
        );
        if fields.u64("events").unwrap_or(0) > 20 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "job produced no events"
        );
        thread::sleep(Duration::from_millis(20));
    }
    shutdown.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread").expect("drain");

    // The drained state is on disk; the job is marked resumable.
    let state = std::fs::read_to_string(serve_dir.join("state.jsonl")).expect("state.jsonl");
    let line = state
        .lines()
        .find(|l| Fields::parse(l).and_then(|f| f.u64("id")) == Some(id))
        .expect("job in state.jsonl");
    let fields = Fields::parse(line).expect("state line");
    assert_eq!(fields.str("status"), Some("interrupted"));
    let partial = std::fs::read_to_string(serve_dir.join(format!("job-{id}/events.jsonl")))
        .expect("partial log");
    let partial_lines = non_timing(&partial);
    assert!(
        !partial_lines.is_empty(),
        "drain must leave the partial log"
    );

    // Second daemon on the same data dir: the job re-queues, resumes
    // from its snapshot, and runs to completion.
    let shutdown = Arc::new(AtomicBool::new(false));
    let (addr, daemon) = spawn(
        DaemonConfig::new("127.0.0.1:0", &serve_dir).with_workers(1),
        Arc::clone(&shutdown),
    )
    .expect("daemon restart");
    let addr = addr.to_string();
    let fields = wait_status(&addr, id, &["done"], Duration::from_secs(120));
    assert_eq!(fields.str("kind"), Some("campaign"));

    // The resumed SSE stream replays history + continuation — compare
    // the whole thing against an uninterrupted in-process run.
    let (stream, dropped) = subscribe(&addr, id, Duration::from_secs(60));
    assert_eq!(dropped, 0);
    let offline = offline_campaign(&data_dir, "difuzz", 11, 300, 2);
    let streamed = non_timing(&stream.join("\n"));
    assert_eq!(
        streamed, offline,
        "replayed stream after drain+resume != uninterrupted run"
    );

    // The on-disk combined log agrees too, and with it the coverage
    // curve (the coverage_sample events are part of the comparison).
    let combined = std::fs::read_to_string(serve_dir.join(format!("job-{id}/events.jsonl")))
        .expect("combined log");
    assert_eq!(
        non_timing(&combined),
        offline,
        "combined events.jsonl != uninterrupted run"
    );
    let curve = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .filter(|l| l.contains("\"type\":\"round_end\""))
            .cloned()
            .collect()
    };
    assert_eq!(curve(&streamed), curve(&offline), "coverage curve diverged");
    assert!(
        combined.starts_with(&partial),
        "resume must append to the drained log, not rewrite it"
    );

    shutdown.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread").expect("second drain");
    let _ = std::fs::remove_dir_all(&data_dir);
}
