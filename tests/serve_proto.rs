//! Property tests for the `hfl-serve` wire-protocol layers: the
//! HTTP/1.1 request parser (arbitrary fragmentation, hostile inputs),
//! SSE frame reassembly under arbitrary split points, and the broadcast
//! hub's subscriber-lag drop accounting.
//!
//! The vendored proptest stub only provides integer strategies, so all
//! structured inputs (requests, payloads, chunk sizes) are derived from
//! integer seeds through a splitmix generator.

use std::io::{self, Read};
use std::sync::Arc;
use std::time::Duration;

use hfl_serve::http::{read_request, ParseError};
use hfl_serve::hub::{EventHub, Recv};
use hfl_serve::sse::{encode_frame, SseParser};
use proptest::prelude::*;

/// Deterministic splitmix64 — the seed-to-structure expander.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A reader that returns the payload in pseudo-random fragments of 1–7
/// bytes — every parse must behave as if the stream arrived whole.
struct Fragmented {
    data: Vec<u8>,
    pos: usize,
    rng: Mix,
}

impl Fragmented {
    fn new(data: Vec<u8>, seed: u64) -> Fragmented {
        Fragmented {
            data,
            pos: 0,
            rng: Mix(seed),
        }
    }
}

impl Read for Fragmented {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let want = 1 + self.rng.below(7) as usize;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

const METHODS: [&str; 4] = ["GET", "POST", "PUT", "DELETE"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A well-formed request survives any stream fragmentation: method,
    /// path, query, headers and body all parse back exactly.
    #[test]
    fn request_round_trips_under_fragmentation(
        seed in any::<u64>(),
        body_len in 0usize..48,
        headers in 0usize..6,
    ) {
        let mut rng = Mix(seed);
        let method = METHODS[rng.below(4) as usize];
        let path = format!("/jobs/{}/events", rng.below(1000));
        let query = if rng.below(2) == 0 { String::new() } else { format!("tail={}", rng.below(2)) };
        let target = if query.is_empty() { path.clone() } else { format!("{path}?{query}") };
        let body: Vec<u8> = (0..body_len).map(|_| rng.next() as u8).collect();
        let mut raw = format!("{method} {target} HTTP/1.1\r\n");
        let mut expect_headers = Vec::new();
        for i in 0..headers {
            let value = format!("v{}", rng.below(100));
            raw.push_str(&format!("X-Key-{i}: {value}\r\n"));
            expect_headers.push((format!("x-key-{i}"), value));
        }
        raw.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);

        let req = read_request(&mut Fragmented::new(bytes, seed ^ 0xabcd)).expect("parses");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.query, query);
        prop_assert_eq!(req.body, body);
        for (name, value) in &expect_headers {
            prop_assert_eq!(req.header(name), Some(value.as_str()));
        }
    }

    /// Hostile bytes never panic the parser: every input either parses
    /// or yields a typed error whose status is a client/server code.
    #[test]
    fn parser_survives_garbage(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = Mix(seed);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        if rng.below(2) == 0 {
            bytes.extend_from_slice(b"\r\n\r\n");
        }
        match read_request(&mut Fragmented::new(bytes, seed)) {
            Ok(req) => prop_assert!(!req.method.is_empty()),
            Err(err) => {
                let status = err.status();
                prop_assert!((400..=599).contains(&status), "{err}: {status}");
            }
        }
    }

    /// Mutating one byte of a valid request never panics (it may still
    /// parse — e.g. a changed body byte — or fail with a typed error).
    #[test]
    fn single_byte_corruption_is_handled(seed in any::<u64>()) {
        let base = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nX-A: b\r\n\r\nwxyz";
        let mut rng = Mix(seed);
        let mut bytes = base.to_vec();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] = rng.next() as u8;
        let _ = read_request(&mut Fragmented::new(bytes, seed));
    }

    /// SSE frames reassemble exactly under arbitrary fragmentation,
    /// including payloads with embedded newlines and blank lines.
    #[test]
    fn sse_frames_survive_fragmentation(seed in any::<u64>(), frames in 1usize..6) {
        let mut rng = Mix(seed);
        let mut payloads = Vec::new();
        let mut wire = String::new();
        for i in 0..frames {
            let lines = 1 + rng.below(3);
            let payload = (0..lines)
                .map(|l| {
                    if rng.below(4) == 0 {
                        String::new() // blank line inside the payload
                    } else {
                        format!("{{\"frame\":{i},\"line\":{l},\"v\":{}}}", rng.next())
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let event = if rng.below(3) == 0 { Some("end") } else { None };
            wire.push_str(&encode_frame(event, &payload));
            payloads.push((event.map(str::to_owned), payload));
        }
        let bytes = wire.as_bytes();
        let mut parser = SseParser::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let n = (1 + rng.below(9) as usize).min(bytes.len() - pos);
            got.extend(parser.push(&bytes[pos..pos + n]));
            pos += n;
        }
        prop_assert_eq!(got.len(), payloads.len());
        for (frame, (event, payload)) in got.iter().zip(&payloads) {
            prop_assert_eq!(frame.event.as_deref(), event.as_deref());
            prop_assert_eq!(&frame.data, payload);
        }
    }

    /// Hub drop accounting: a subscriber that reads only after `n`
    /// publishes into a capacity-`c` ring sees exactly
    /// `max(0, n - c)` reported as lag and the last `min(n, c)` lines
    /// in order, ending at sequence `n - 1`.
    #[test]
    fn hub_lag_accounts_for_every_drop(capacity in 1usize..9, published in 0u64..64) {
        let hub = Arc::new(EventHub::new(capacity));
        let mut sub = hub.subscribe();
        for i in 0..published {
            hub.publish(&format!("line-{i}"));
        }
        hub.close();
        let expect_missed = published.saturating_sub(capacity as u64);
        let mut missed = 0;
        let mut seqs = Vec::new();
        loop {
            match sub.next(Duration::from_millis(50)) {
                Recv::Line { seq, line } => {
                    let expect = format!("line-{seq}");
                    prop_assert_eq!(&*line, expect.as_str());
                    seqs.push(seq);
                }
                Recv::Lagged { missed: m } => missed += m,
                Recv::Closed => break,
                Recv::TimedOut => prop_assert!(false, "publisher already closed"),
            }
        }
        prop_assert_eq!(missed, expect_missed);
        prop_assert_eq!(sub.total_dropped(), expect_missed);
        prop_assert_eq!(seqs.len() as u64, published - expect_missed);
        prop_assert_eq!(seqs.first().copied(), (published > 0).then_some(expect_missed));
        prop_assert_eq!(seqs.last().copied(), published.checked_sub(1));
        let contiguous = seqs.windows(2).all(|w| w[1] == w[0] + 1);
        prop_assert!(contiguous);
    }
}

/// Deterministic spot-checks that complement the properties above.
#[test]
fn parse_error_statuses_are_stable() {
    let cases: [(&[u8], u16); 3] = [
        (b"BAD\r\n\r\n", 400),
        (
            b"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
            413,
        ),
        (b"GET / HTTP/1.1\r\nbroken\r\n\r\n", 400),
    ];
    for (raw, status) in cases {
        let err = read_request(&mut Fragmented::new(raw.to_vec(), 1)).expect_err("must fail");
        assert_eq!(err.status(), status, "{err}");
    }
    // Over-long heads get their own status.
    let mut huge = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
    huge.extend(std::iter::repeat_n(b'a', 20 * 1024));
    huge.extend_from_slice(b"\r\n\r\n");
    let err = read_request(&mut Fragmented::new(huge, 1)).expect_err("too large");
    assert_eq!(err, ParseError::HeadTooLarge);
    assert_eq!(err.status(), 431);
}
