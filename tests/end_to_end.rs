//! Cross-crate integration tests: the full fuzzing loop against the
//! instrumented cores.

use hfl::baselines::DifuzzRtlFuzzer;
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, RunConfig};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl_dut::{CoreKind, CoverageKind};

fn tiny_hfl(seed: u64) -> HflFuzzer {
    let mut cfg = HflConfig::small();
    cfg.generator.hidden = 24;
    cfg.predictor.hidden = 24;
    cfg.test_len = 8;
    cfg.body_cap = 8;
    HflFuzzer::new(cfg.with_seed(seed))
}

#[test]
fn hfl_campaign_runs_on_every_core() {
    for core in CoreKind::ALL {
        let mut hfl = tiny_hfl(1);
        let result = run_campaign(
            &mut hfl,
            &CampaignSpec::builder(core, CampaignConfig::quick(40))
                .build()
                .expect("valid spec"),
        )
        .expect("campaign runs");
        let (c, l, f) = result.final_counts();
        assert!(c > 10, "{core}: condition coverage too low ({c})");
        assert!(l > 20, "{core}: line coverage too low ({l})");
        assert!(f > 5, "{core}: fsm coverage too low ({f})");
        assert!(
            result.final_fraction(CoverageKind::Line) < 1.0,
            "dead points exist"
        );
    }
}

#[test]
fn coverage_curves_are_monotone_and_saturating() {
    let mut hfl = tiny_hfl(2);
    let result = run_campaign(
        &mut hfl,
        &CampaignSpec::builder(
            CoreKind::Rocket,
            CampaignConfig {
                cases: 120,
                sample_every: 20,
                run: RunConfig::quick().with_max_steps(20_000),
            },
        )
        .build()
        .expect("valid spec"),
    )
    .expect("campaign runs");
    let conds: Vec<usize> = result.curve.iter().map(|s| s.condition).collect();
    assert!(
        conds.windows(2).all(|w| w[1] >= w[0]),
        "monotone: {conds:?}"
    );
    // Early growth dominates late growth (saturation shape).
    let early = conds[1] - conds[0];
    let late = conds[conds.len() - 1] - conds[conds.len() - 2];
    assert!(early >= late, "early {early} vs late {late}");
}

#[test]
fn hfl_fuzzing_detects_injected_bugs_on_rocket() {
    // Rocket carries K2/K3 among others; a modest random+HFL budget finds
    // at least one unique signature.
    let mut hfl = tiny_hfl(3);
    let result = run_campaign(
        &mut hfl,
        &CampaignSpec::builder(CoreKind::Rocket, CampaignConfig::quick(200))
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    assert!(
        result.unique_signatures >= 1,
        "expected at least one mismatch signature, got {}",
        result.unique_signatures
    );
}

#[test]
fn signature_dedup_keeps_reports_manageable() {
    let mut fuzzer = DifuzzRtlFuzzer::new(4, 16);
    let result = run_campaign(
        &mut fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, CampaignConfig::quick(200))
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    assert!(result.total_mismatches >= result.unique_signatures as u64);
    // Dedup must compress aggressively: far fewer signatures than raw
    // mismatches once the same bug fires repeatedly.
    if result.total_mismatches > 20 {
        assert!(
            (result.unique_signatures as u64) < result.total_mismatches,
            "dedup had no effect"
        );
    }
}

#[test]
fn baseline_and_hfl_share_identical_measurement() {
    // Same core, same budget: totals must agree (same coverage universe).
    let mut hfl = tiny_hfl(5);
    let a = run_campaign(
        &mut hfl,
        &CampaignSpec::builder(CoreKind::Cva6, CampaignConfig::quick(20))
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    let mut rnd = DifuzzRtlFuzzer::new(5, 8);
    let b = run_campaign(
        &mut rnd,
        &CampaignSpec::builder(CoreKind::Cva6, CampaignConfig::quick(20))
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.core, b.core);
}

#[test]
fn hfl_loop_state_advances_sensibly() {
    let mut hfl = tiny_hfl(6);
    let _ = run_campaign(
        &mut hfl,
        &CampaignSpec::builder(CoreKind::Rocket, CampaignConfig::quick(50))
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    let stats = hfl.stats();
    assert_eq!(stats.cases, 50);
    assert!(stats.episodes >= 4, "episodes: {}", stats.episodes);
    assert!(stats.best_coverage > 0.0);
}
