//! The crash-safety contract, end to end: a campaign interrupted at an
//! arbitrary round boundary and resumed from its snapshot must replay the
//! uninterrupted run bit for bit — merged non-timing event stream and
//! final coverage curve — at any thread count, for the baselines and for
//! HFL (whose snapshot carries LSTM weights, Adam moments and RNG
//! streams). Also covers crash-mid-write leftovers and fault containment
//! interacting with resume.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use hfl::baselines::{DifuzzRtlFuzzer, Feedback, Fuzzer, TestBody};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignResult, CampaignSpec, CheckpointPolicy};
use hfl::exec::{FaultKind, FaultPlan, FaultPolicy};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl::obs::{Event, RingSink, SinkHandle};
use hfl::StopHandle;
use hfl_dut::CoreKind;
use hfl_nn::PersistError;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hfl-crash-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn non_timing(events: &[Event]) -> Vec<Event> {
    events.iter().filter(|e| !e.is_timing()).cloned().collect()
}

/// Delegates to an inner fuzzer and raises the campaign's stop flag after
/// a fixed number of generation rounds — a deterministic stand-in for an
/// operator (or the CI kill job) interrupting the run.
struct StopAfterRounds<F> {
    inner: F,
    rounds_left: u32,
    stop: StopHandle,
}

impl<F: Fuzzer> StopAfterRounds<F> {
    fn new(inner: F, rounds: u32, stop: StopHandle) -> StopAfterRounds<F> {
        StopAfterRounds {
            inner,
            rounds_left: rounds,
            stop,
        }
    }
}

impl<F: Fuzzer> Fuzzer for StopAfterRounds<F> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn next_case(&mut self) -> TestBody {
        self.inner.next_case()
    }
    fn next_round(&mut self, n: usize) -> Vec<TestBody> {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.stop.request_stop();
            }
        }
        self.inner.next_round(n)
    }
    fn feedback(&mut self, body: &TestBody, feedback: Feedback) {
        self.inner.feedback(body, feedback);
    }
    fn attach_sink(&mut self, sink: SinkHandle) {
        self.inner.attach_sink(sink);
    }
    fn save_state(&self, w: &mut dyn Write) -> Result<(), PersistError> {
        self.inner.save_state(w)
    }
    fn load_state(&mut self, r: &mut dyn Read) -> Result<(), PersistError> {
        self.inner.load_state(r)
    }
}

struct Observed {
    result: CampaignResult,
    events: Vec<Event>,
}

fn run_observed(
    fuzzer: &mut dyn Fuzzer,
    configure: impl FnOnce(hfl::campaign::CampaignSpecBuilder) -> hfl::campaign::CampaignSpecBuilder,
    config: CampaignConfig,
    threads: usize,
) -> Observed {
    let ring = Arc::new(RingSink::new(1_000_000));
    let builder = CampaignSpec::builder(CoreKind::Rocket, config)
        .threads(threads)
        .sink(SinkHandle::new(ring.clone()));
    let spec = configure(builder).build().expect("valid spec");
    let result = run_campaign(fuzzer, &spec).expect("campaign runs");
    Observed {
        result,
        events: ring.events(),
    }
}

/// Interrupts after `stop_rounds` rounds, resumes from the snapshot, and
/// checks the merged non-timing stream and every result field under the
/// determinism contract against an uninterrupted reference.
fn check_resume_matches<F: Fuzzer + 'static>(
    tag: &str,
    make_fuzzer: impl Fn() -> F,
    config: CampaignConfig,
    threads: usize,
    stop_rounds: u32,
    plan: Option<fn() -> FaultPlan>,
) {
    let dir = scratch_dir(tag);
    let with_plan = |builder: hfl::campaign::CampaignSpecBuilder| match plan {
        Some(make) => builder.fault_plan(make()).fault_policy(FaultPolicy {
            max_retries: 1,
            fuel: None,
        }),
        None => builder,
    };

    let mut reference_fuzzer = make_fuzzer();
    let reference = run_observed(&mut reference_fuzzer, with_plan, config, threads);
    assert!(reference.result.completed);

    let stop = StopHandle::new();
    let mut interrupted_fuzzer = StopAfterRounds::new(make_fuzzer(), stop_rounds, stop.clone());
    let partial = run_observed(
        &mut interrupted_fuzzer,
        |builder| {
            with_plan(
                builder
                    .checkpoint(CheckpointPolicy::new(&dir, 1))
                    .control(stop),
            )
        },
        config,
        threads,
    );
    assert!(!partial.result.completed, "{tag}: stop flag did not fire");

    let snapshot = CheckpointPolicy::latest_snapshot(&dir).expect("snapshot written");
    let mut resumed_fuzzer = make_fuzzer();
    let resumed = run_observed(
        &mut resumed_fuzzer,
        |builder| with_plan(builder.resume_from(snapshot)),
        config,
        threads,
    );
    assert!(resumed.result.completed);

    let mut merged = non_timing(&partial.events);
    merged.extend(non_timing(&resumed.events));
    assert_eq!(
        non_timing(&reference.events),
        merged,
        "{tag}: merged event stream diverged at {threads} threads"
    );
    assert_eq!(reference.result.curve, resumed.result.curve, "{tag}: curve");
    assert_eq!(reference.result.signatures, resumed.result.signatures);
    assert_eq!(
        reference.result.first_detection,
        resumed.result.first_detection
    );
    assert_eq!(reference.result.cumulative, resumed.result.cumulative);
    assert_eq!(
        reference.result.instructions_executed,
        resumed.result.instructions_executed
    );
    assert_eq!(
        reference.result.trigger_corpus,
        resumed.result.trigger_corpus
    );
    assert_eq!(reference.result.aborted_cases, resumed.result.aborted_cases);
    assert_eq!(reference.result.quarantined, resumed.result.quarantined);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn baseline_resume_is_bit_identical_at_any_thread_count() {
    let config = CampaignConfig::quick(40).with_batch(4);
    for threads in [1usize, 2, 8] {
        check_resume_matches(
            &format!("difuzz-t{threads}"),
            || DifuzzRtlFuzzer::new(17, 12),
            config,
            threads,
            3,
            None,
        );
    }
}

#[test]
fn hfl_resume_restores_models_optimizer_and_rng() {
    // HFL's snapshot must carry everything the learner touches: generator
    // and predictor LSTMs, Adam moments, episode buffers and RNG streams.
    // Any drift shows up as diverging PpoUpdate/PredictorEval events or a
    // different post-resume curve.
    let tiny = || {
        let mut cfg = HflConfig::small().with_seed(13);
        cfg.generator.hidden = 16;
        cfg.predictor.hidden = 16;
        cfg.test_len = 6;
        HflFuzzer::new(cfg)
    };
    let config = CampaignConfig::quick(40).with_batch(4);
    for threads in [1usize, 2, 8] {
        check_resume_matches(&format!("hfl-t{threads}"), tiny, config, threads, 4, None);
    }
}

#[test]
fn resume_replays_planned_faults_identically() {
    // The fault plan keys on the pool-lifetime global case index, which a
    // resume continues (restored pool counters): a fault planned beyond
    // the interruption point fires in the resumed process exactly where
    // the uninterrupted reference saw it.
    let config = CampaignConfig::quick(40).with_batch(4);
    check_resume_matches(
        "faulted",
        || DifuzzRtlFuzzer::new(19, 12),
        config,
        2,
        3,
        Some(|| {
            FaultPlan::new()
                .fail_at(5, FaultKind::Panic)
                .fail_at_persistent(23, FaultKind::Hang)
        }),
    );
}

#[test]
fn stray_temp_file_from_a_crash_mid_write_is_ignored() {
    let dir = scratch_dir("stray-tmp");
    let config = CampaignConfig::quick(24).with_batch(4);
    let stop = StopHandle::new();
    let mut fuzzer = StopAfterRounds::new(DifuzzRtlFuzzer::new(29, 12), 2, stop.clone());
    run_campaign(
        &mut fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .checkpoint(CheckpointPolicy::new(&dir, 1))
            .control(stop)
            .build()
            .expect("valid spec"),
    )
    .expect("interrupted campaign runs");

    // A crash during a later checkpoint write leaves a half-written temp
    // file next to the (still intact) previous snapshot.
    std::fs::write(dir.join("campaign.ckpt.tmp"), b"half-written garbage").expect("write tmp");
    let snapshot = CheckpointPolicy::latest_snapshot(&dir).expect("snapshot still found");
    assert!(
        !snapshot.to_string_lossy().ends_with(".tmp"),
        "resume picked up the torn temp file"
    );

    let mut resumed = DifuzzRtlFuzzer::new(29, 12);
    let result = run_campaign(
        &mut resumed,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .resume_from(snapshot)
            .build()
            .expect("valid spec"),
    )
    .expect("resume runs");
    assert!(result.completed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_are_rejected_not_trusted() {
    let dir = scratch_dir("corrupt");
    let config = CampaignConfig::quick(16).with_batch(4);
    let mut fuzzer = DifuzzRtlFuzzer::new(31, 12);
    run_campaign(
        &mut fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .checkpoint(CheckpointPolicy::new(&dir, 1))
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    let snapshot = CheckpointPolicy::latest_snapshot(&dir).expect("snapshot written");

    // Flip one byte in the middle of the file: a section checksum (or the
    // global trailer) must catch it.
    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snapshot, &bytes).expect("rewrite snapshot");

    let mut resumed = DifuzzRtlFuzzer::new(31, 12);
    let err = run_campaign(
        &mut resumed,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .resume_from(&snapshot)
            .build()
            .expect("valid spec"),
    )
    .expect_err("corrupt snapshot must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt") || msg.contains("truncated"),
        "unexpected error: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sticky_faults_leave_a_poc_and_a_quarantine_file() {
    let dir = scratch_dir("quarantine");
    let config = CampaignConfig::quick(20).with_batch(4);
    let mut fuzzer = DifuzzRtlFuzzer::new(37, 12);
    let result = run_campaign(
        &mut fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .checkpoint(CheckpointPolicy::new(&dir, 1))
            .fault_plan(FaultPlan::new().fail_at_persistent(7, FaultKind::Panic))
            .fault_policy(FaultPolicy {
                max_retries: 2,
                fuel: None,
            })
            .build()
            .expect("valid spec"),
    )
    .expect("campaign runs");
    assert!(
        result.completed,
        "a poisoned case must not end the campaign"
    );
    assert_eq!(result.aborted_cases, 1);
    assert_eq!(result.quarantined.entries().len(), 1);
    assert_eq!(result.quarantined.entries()[0].name, "case-7");

    // The PoC rides along on disk next to the snapshot, as replayable text.
    let text = std::fs::read_to_string(dir.join("quarantine.corpus")).expect("quarantine file");
    let reloaded = hfl::Corpus::from_text(&text).expect("quarantine parses");
    assert_eq!(reloaded, result.quarantined);
    let _ = std::fs::remove_dir_all(&dir);
}
