//! Correctness-oracle hardening: the signature extractor's dedup and
//! collision behaviour, triage's signature preservation and idempotence,
//! and a clean-configuration DUT↔GRM lockstep property — with no injected
//! defects the two sides must agree on every random program, on every
//! core.

use hfl::baselines::random_instruction;
use hfl::difftest::{Mismatch, MismatchKind, Signature, SignatureSet};
use hfl::harness::Executor;
use hfl::poc::poc_for;
use hfl::triage::minimize;
use hfl_dut::CoreKind;
use hfl_riscv::{Instruction, Opcode, Reg};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mismatch(kind: MismatchKind, opcode: Option<Opcode>, pc: u64, detail: &str) -> Mismatch {
    Mismatch {
        kind,
        pc,
        word: 0x13,
        opcode,
        detail: detail.to_owned(),
    }
}

#[test]
fn signatures_are_register_and_location_independent() {
    // §V-B: the same bug triggered through different registers, pcs or
    // concrete values must dedup to one signature.
    let a = mismatch(
        MismatchKind::RegWrite,
        Some(Opcode::Add),
        0x8000_0000,
        "x5 = 3 vs 4",
    );
    let b = mismatch(
        MismatchKind::RegWrite,
        Some(Opcode::Add),
        0x8000_0040,
        "x17 = 9 vs 0",
    );
    assert_eq!(a.signature(), b.signature());

    let mut set = SignatureSet::new();
    assert!(set.insert(&a), "first sighting is new");
    assert!(!set.insert(&b), "same signature dedups");
    assert_eq!(set.unique(), 1);
    assert_eq!(set.total_mismatches, 2);
    assert!(set.contains(a.signature()));
    assert!(!set.contains(Signature(!a.signature().0)));
}

#[test]
fn signatures_separate_what_must_not_collide() {
    let base = mismatch(MismatchKind::RegWrite, Some(Opcode::Add), 0, "");
    // A different opcode is a different bug report.
    let other_op = mismatch(MismatchKind::RegWrite, Some(Opcode::Sub), 0, "");
    assert_ne!(base.signature(), other_op.signature());
    // A different mismatch class is a different bug report.
    let other_kind = mismatch(MismatchKind::MemOp, Some(Opcode::Add), 0, "");
    assert_ne!(base.signature(), other_kind.signature());
    // Trap causes are part of the class: cause 2 vs cause 5 differ, and
    // which *side* trapped differs too.
    let trap = |grm, dut| {
        mismatch(
            MismatchKind::Trap {
                grm_cause: grm,
                dut_cause: dut,
            },
            Some(Opcode::Ld),
            0,
            "",
        )
    };
    assert_ne!(
        trap(Some(2), None).signature(),
        trap(Some(5), None).signature()
    );
    assert_ne!(
        trap(Some(2), None).signature(),
        trap(None, Some(2)).signature()
    );
    // Final-state fields distinguish x/f/fcsr reports.
    let fs = |field| mismatch(MismatchKind::FinalState { field }, None, 0, "");
    assert_ne!(fs("x").signature(), fs("fcsr").signature());
    // An undecodable word (no opcode) still has a stable signature.
    let raw = mismatch(MismatchKind::Crash, None, 0, "");
    assert_eq!(raw.signature(), raw.signature());

    let mut set = SignatureSet::new();
    for m in [&base, &other_op, &other_kind] {
        assert!(set.insert(m));
    }
    assert_eq!(set.unique(), 3);
}

#[test]
fn minimisation_preserves_the_signature_and_is_idempotent() {
    // Pad the K2 PoC with benign noise, minimise, and check that (a) the
    // minimised case still reproduces the *original* signature and (b)
    // minimising the already-minimal case is a fixed point.
    let mut rng = StdRng::seed_from_u64(17);
    let mut padded: Vec<Instruction> = Vec::new();
    for _ in 0..8 {
        let inst = random_instruction(&mut rng);
        if inst.opcode.is_memory_access() || inst.opcode.is_control_flow() {
            continue;
        }
        padded.push(inst);
    }
    padded.extend(poc_for("K2"));

    let mut executor = Executor::builder(CoreKind::Rocket).build();
    let signature = executor.run_case(&padded).mismatches[0].signature();

    let first = minimize(&mut executor, &padded, signature).expect("padded case reproduces");
    let replay = executor.run_case(&first.body);
    assert!(
        replay.mismatches.iter().any(|m| m.signature() == signature),
        "minimisation lost the original signature"
    );

    let second = minimize(&mut executor, &first.body, signature).expect("minimal reproduces");
    assert_eq!(
        second.body, first.body,
        "minimisation must be idempotent on its own output"
    );
    assert_eq!(second.original_len, first.body.len());
    assert_eq!(second.reduction(), 0.0, "nothing left to remove");
}

/// Straight-line random body: memory/control flow excluded so the program
/// terminates fast; the remaining ALU/CSR mix still exercises decode,
/// writeback and the trace comparator on every instruction.
fn straight_line_body(seed: u64, len: usize) -> Vec<Instruction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = Vec::with_capacity(len);
    while body.len() < len {
        let inst = random_instruction(&mut rng);
        if inst.opcode.is_control_flow() {
            continue;
        }
        body.push(inst);
    }
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With an empty defect configuration the DUT *is* the GRM: random
    /// programs must produce zero mismatches on all three cores.
    #[test]
    fn clean_config_runs_in_lockstep_on_every_core(seed in any::<u64>(), len in 4usize..24) {
        let body = straight_line_body(seed, len);
        for core in [CoreKind::Rocket, CoreKind::Boom, CoreKind::Cva6] {
            let mut executor = Executor::builder(core)
                .quirks(hfl_grm::cpu::Quirks::default())
                .build();
            let result = executor.run_case(&body);
            prop_assert!(
                result.mismatches.is_empty(),
                "{core:?}: clean DUT diverged: {:?}",
                result.mismatches
            );
            // And the lockstep really did execute the program.
            prop_assert_eq!(result.grm_arch, result.dut.arch.clone());
        }
    }

    /// The same program on the same clean core is bit-stable across
    /// executors (no hidden state leaks between runs).
    #[test]
    fn clean_config_is_reproducible(seed in any::<u64>()) {
        let body = straight_line_body(seed, 8);
        let run = || {
            let mut executor = Executor::builder(CoreKind::Rocket)
                .quirks(hfl_grm::cpu::Quirks::default())
                .build();
            let r = executor.run_case(&body);
            (r.dut.arch.clone(), r.dut.coverage.clone())
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn clean_config_agrees_even_on_traps() {
    // A deliberate misaligned load traps on both sides identically — the
    // oracle must treat agreeing traps as agreement, not as a mismatch.
    let body = vec![
        Instruction::i(Opcode::Addi, Reg::X5, Reg::X0, 3),
        Instruction::i(Opcode::Ld, Reg::X6, Reg::X5, 0),
    ];
    for core in [CoreKind::Rocket, CoreKind::Boom, CoreKind::Cva6] {
        let mut executor = Executor::builder(core)
            .quirks(hfl_grm::cpu::Quirks::default())
            .build();
        let result = executor.run_case(&body);
        assert!(
            result.mismatches.is_empty(),
            "{core:?}: {:?}",
            result.mismatches
        );
        assert!(
            result.grm_trace.iter().any(|e| e.trap.is_some()),
            "{core:?}: expected the load to trap"
        );
    }
}
