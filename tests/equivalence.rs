//! The differential-testing soundness property: a DUT with *no* injected
//! defects is architecturally indistinguishable from the golden reference
//! model on arbitrary generated programs. Every mismatch the fuzzing
//! campaigns report is therefore attributable to an injected defect —
//! the "no false positives" guarantee behind the §VII tables.

use hfl::baselines::random_instruction;
use hfl::difftest::compare;
use hfl_dut::{CoreKind, Dut};
use hfl_grm::cpu::Quirks;
use hfl_grm::{Cpu, Program};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_equivalent(core: CoreKind, body: &[hfl_riscv::Instruction], label: &str) {
    let program = Program::assemble(body);
    let mut dut = Dut::new(core);
    let dut_result = dut.run_program_with_quirks(&program, 20_000, Quirks::default());
    let mut grm = Cpu::new();
    grm.load_program(&program);
    let grm_run = grm.run(20_000);
    let mismatches = compare(
        &grm.trace,
        grm_run.reason,
        &grm.arch_snapshot(),
        &dut_result.trace,
        dut_result.halt,
        &dut_result.arch,
    );
    assert!(
        mismatches.is_empty(),
        "{label} on {core}: defect-free DUT diverged: {}",
        mismatches[0]
    );
}

#[test]
fn defect_free_dut_matches_grm_on_random_programs() {
    let mut rng = StdRng::seed_from_u64(0xE0);
    for core in CoreKind::ALL {
        for case in 0..60 {
            let body: Vec<_> = (0..16).map(|_| random_instruction(&mut rng)).collect();
            assert_equivalent(core, &body, &format!("random case {case}"));
        }
    }
}

#[test]
fn defect_free_dut_matches_grm_on_the_pocs() {
    // Even the directed vulnerability triggers are clean without the
    // defect injection.
    for bug in hfl_dut::CATALOG {
        for &core in bug.cores {
            assert_equivalent(core, &hfl::poc::poc_for(bug.id), bug.id);
        }
    }
}

#[test]
fn defect_free_dut_matches_grm_on_long_programs() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    let body: Vec<_> = (0..180).map(|_| random_instruction(&mut rng)).collect();
    assert_equivalent(CoreKind::Cva6, &body, "long program");
}

#[test]
fn full_defect_config_still_matches_on_benign_programs() {
    // A program touching none of the defect triggers must not diverge even
    // with every bug injected.
    use hfl_riscv::{Instruction, Opcode, Reg};
    let body = vec![
        Instruction::i(Opcode::Addi, Reg::X10, Reg::X0, 11),
        Instruction::r(Opcode::Add, Reg::X11, Reg::X10, Reg::X10),
        Instruction::r(Opcode::Mul, Reg::X12, Reg::X11, Reg::X10),
        Instruction::s(Opcode::Sd, Reg::X12, 0, Reg::X5),
        Instruction::i(Opcode::Ld, Reg::X13, Reg::X5, 0),
        Instruction::b(Opcode::Beq, Reg::X12, Reg::X13, 8),
        // The taken branch must land on the halt pc, not past it —
        // otherwise execution falls into background memory, where garbage
        // words legitimately probe the injected CSR defects.
        Instruction::NOP,
    ];
    for core in CoreKind::ALL {
        let program = Program::assemble(&body);
        let mut dut = Dut::new(core);
        let result = dut.run_program(&program, 20_000);
        let mut grm = Cpu::new();
        grm.load_program(&program);
        let grm_run = grm.run(20_000);
        let mismatches = compare(
            &grm.trace,
            grm_run.reason,
            &grm.arch_snapshot(),
            &result.trace,
            result.halt,
            &result.arch,
        );
        assert!(mismatches.is_empty(), "{core}: {:?}", mismatches.first());
    }
}
