//! The hierarchical scenario policy under the campaign determinism
//! contract: a scenario-bandit campaign interrupted at a round boundary
//! and resumed from its snapshot must replay the uninterrupted run bit
//! for bit — merged non-timing event stream, per-scenario stats rows and
//! final coverage curve — at any thread count. The same contract is
//! checked for the GoldenFuzz generative baseline (whose snapshot
//! carries the learned transition table), and a property test pins that
//! scenario selection is a pure function of the seed and the feedback
//! sequence.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use hfl::baselines::{Feedback, Fuzzer, GoldenFuzzFuzzer, TestBody};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignResult, CampaignSpec, CheckpointPolicy};
use hfl::obs::{Event, RingSink, SinkHandle};
use hfl::scenario::{Scenario, ScenarioConfig, ScenarioFuzzer};
use hfl::StopHandle;
use hfl_dut::CoreKind;
use hfl_nn::PersistError;
use proptest::prelude::*;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hfl-scenario-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn non_timing(events: &[Event]) -> Vec<Event> {
    events.iter().filter(|e| !e.is_timing()).cloned().collect()
}

fn tiny_scenario(seed: u64) -> ScenarioFuzzer {
    let mut cfg = ScenarioConfig::small().with_seed(seed);
    cfg.generator.hidden = 16;
    cfg.case_len = 6;
    cfg.stats_every = 8;
    ScenarioFuzzer::new(cfg)
}

/// Delegates to an inner fuzzer and raises the campaign's stop flag
/// after a fixed number of generation rounds (deterministic interrupt).
struct StopAfterRounds<F> {
    inner: F,
    rounds_left: u32,
    stop: StopHandle,
}

impl<F: Fuzzer> Fuzzer for StopAfterRounds<F> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn next_case(&mut self) -> TestBody {
        self.inner.next_case()
    }
    fn next_round(&mut self, n: usize) -> Vec<TestBody> {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.stop.request_stop();
            }
        }
        self.inner.next_round(n)
    }
    fn feedback(&mut self, body: &TestBody, feedback: Feedback) {
        self.inner.feedback(body, feedback);
    }
    fn attach_sink(&mut self, sink: SinkHandle) {
        self.inner.attach_sink(sink);
    }
    fn save_state(&self, w: &mut dyn Write) -> Result<(), PersistError> {
        self.inner.save_state(w)
    }
    fn load_state(&mut self, r: &mut dyn Read) -> Result<(), PersistError> {
        self.inner.load_state(r)
    }
}

struct Observed {
    result: CampaignResult,
    events: Vec<Event>,
}

fn run_observed(
    fuzzer: &mut dyn Fuzzer,
    configure: impl FnOnce(hfl::campaign::CampaignSpecBuilder) -> hfl::campaign::CampaignSpecBuilder,
    config: CampaignConfig,
    threads: usize,
) -> Observed {
    let ring = Arc::new(RingSink::new(1_000_000));
    let builder = CampaignSpec::builder(CoreKind::Rocket, config)
        .threads(threads)
        .sink(SinkHandle::new(ring.clone()));
    let spec = configure(builder).build().expect("valid spec");
    let result = run_campaign(fuzzer, &spec).expect("campaign runs");
    Observed {
        result,
        events: ring.events(),
    }
}

/// Interrupts after `stop_rounds` rounds, resumes from the snapshot, and
/// checks the merged non-timing stream and result against an
/// uninterrupted reference.
fn check_resume_matches<F: Fuzzer + 'static>(
    tag: &str,
    make_fuzzer: impl Fn() -> F,
    config: CampaignConfig,
    threads: usize,
    stop_rounds: u32,
) {
    let dir = scratch_dir(tag);

    let mut reference_fuzzer = make_fuzzer();
    let reference = run_observed(&mut reference_fuzzer, |b| b, config, threads);
    assert!(reference.result.completed);

    let stop = StopHandle::new();
    let mut interrupted_fuzzer = StopAfterRounds {
        inner: make_fuzzer(),
        rounds_left: stop_rounds,
        stop: stop.clone(),
    };
    let partial = run_observed(
        &mut interrupted_fuzzer,
        |builder| {
            builder
                .checkpoint(CheckpointPolicy::new(&dir, 1))
                .control(stop)
        },
        config,
        threads,
    );
    assert!(!partial.result.completed, "{tag}: stop flag did not fire");

    let snapshot = CheckpointPolicy::latest_snapshot(&dir).expect("snapshot written");
    let mut resumed_fuzzer = make_fuzzer();
    let resumed = run_observed(
        &mut resumed_fuzzer,
        |builder| builder.resume_from(snapshot),
        config,
        threads,
    );
    assert!(resumed.result.completed);

    let mut merged = non_timing(&partial.events);
    merged.extend(non_timing(&resumed.events));
    assert_eq!(
        non_timing(&reference.events),
        merged,
        "{tag}: merged event stream diverged at {threads} threads"
    );
    assert_eq!(reference.result.curve, resumed.result.curve, "{tag}: curve");
    assert_eq!(reference.result.signatures, resumed.result.signatures);
    assert_eq!(reference.result.cumulative, resumed.result.cumulative);
    assert_eq!(
        reference.result.instructions_executed,
        resumed.result.instructions_executed
    );
    assert_eq!(
        reference.result.trigger_corpus,
        resumed.result.trigger_corpus
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_resume_is_bit_identical_at_any_thread_count() {
    // The snapshot must carry the full controller: RNG, generator
    // weights, bandit counts/means and the refined bias tables. Any
    // drift shows up as a diverging case stream or ScenarioStats row.
    let config = CampaignConfig::quick(40).with_batch(4);
    for threads in [1usize, 2, 8] {
        check_resume_matches(
            &format!("bandit-t{threads}"),
            || tiny_scenario(13),
            config,
            threads,
            4,
        );
    }
}

#[test]
fn goldenfuzz_resume_is_bit_identical_at_any_thread_count() {
    // GoldenFuzz's snapshot carries the learned transition table: a
    // resume that reset it would score (and pick) different candidates.
    let config = CampaignConfig::quick(40).with_batch(4);
    for threads in [1usize, 2, 8] {
        check_resume_matches(
            &format!("golden-t{threads}"),
            || GoldenFuzzFuzzer::new(23, 10),
            config,
            threads,
            3,
        );
    }
}

#[test]
fn scenario_campaign_emits_stats_rows_for_every_scenario() {
    // The deterministic stats cadence (every `stats_every` feedbacks)
    // must surface one row per arm, identically at any thread count.
    let config = CampaignConfig::quick(32).with_batch(4);
    let mut streams = Vec::new();
    for threads in [1usize, 2] {
        let mut fuzzer = tiny_scenario(5);
        let observed = run_observed(&mut fuzzer, |b| b, config, threads);
        let rows: Vec<(u64, String, u64)> = observed
            .events
            .iter()
            .filter_map(|e| match e {
                Event::ScenarioStats {
                    case,
                    scenario,
                    pulls,
                    ..
                } => Some((*case, scenario.clone(), *pulls)),
                _ => None,
            })
            .collect();
        for s in Scenario::ALL {
            assert!(
                rows.iter().any(|(_, name, _)| name == s.as_str()),
                "no stats row for {s} at {threads} threads"
            );
        }
        // The table is complete: pulls across one table sum to the cases
        // fed so far (every case belongs to exactly one arm).
        let first_case = rows.first().expect("at least one table").0;
        let first_table: u64 = rows
            .iter()
            .filter(|(case, _, _)| *case == first_case)
            .map(|(_, _, pulls)| pulls)
            .sum();
        assert_eq!(first_table, first_case, "pulls must partition the cases");
        streams.push(rows);
    }
    assert_eq!(streams[0], streams[1], "stats diverged across threads");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scenario selection is a pure function of the seed and the
    /// feedback sequence: two fuzzers driven identically pick the same
    /// arms, emit the same cases and end with identical bandit state —
    /// regardless of what the (deterministically replayed) rewards were.
    #[test]
    fn selection_is_deterministic_under_fixed_seed(
        seed in 0u64..1024,
        cases in 8usize..24,
        reward_bits in any::<u64>(),
    ) {
        let mut a = tiny_scenario(seed);
        let mut b = tiny_scenario(seed);
        for i in 0..cases {
            prop_assert_eq!(a.peek_scenario(), b.peek_scenario());
            let (ca, cb) = (a.next_case(), b.next_case());
            prop_assert_eq!(&ca, &cb);
            let gained = (reward_bits >> (i % 64)) & 1 == 1;
            a.feedback(&ca, Feedback::scalar(gained, 0.25));
            b.feedback(&cb, Feedback::scalar(gained, 0.25));
        }
        prop_assert_eq!(a.bandit(), b.bandit());
        // And the next selection after the drive is still aligned.
        prop_assert_eq!(a.peek_scenario(), b.peek_scenario());
    }
}
