//! Property-based architecture tests for the golden reference model:
//! algebraic identities the RISC-V spec guarantees, checked over random
//! operands via in-register programs.

use hfl_grm::{Cpu, HaltReason, Program};
use hfl_riscv::{Instruction, Opcode, Reg};
use proptest::prelude::*;

/// Runs a body and returns the final CPU state.
fn run(body: &[Instruction]) -> Cpu {
    let program = Program::assemble(body);
    let mut cpu = Cpu::new();
    cpu.load_program(&program);
    let result = cpu.run(50_000);
    assert_ne!(result.reason, HaltReason::StepBudget);
    cpu
}

/// Materialises two operands into x10/x11 followed by `body`.
fn with_operands(a: u64, b: u64, tail: &[Instruction]) -> Vec<Instruction> {
    let mut body = hfl_grm::program::emit_li64(Reg::X10, a);
    body.extend(hfl_grm::program::emit_li64(Reg::X11, b));
    body.extend_from_slice(tail);
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The division identity: `a == div(a,b)*b + rem(a,b)` for b != 0
    /// (including the overflow case, where div = MIN and rem = 0).
    #[test]
    fn signed_division_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let cpu = run(&with_operands(a as u64, b as u64, &[
            Instruction::r(Opcode::Div, Reg::X12, Reg::X10, Reg::X11),
            Instruction::r(Opcode::Rem, Reg::X13, Reg::X10, Reg::X11),
        ]));
        let q = cpu.x[12] as i64;
        let r = cpu.x[13] as i64;
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        if a != i64::MIN || b != -1 {
            prop_assert!(r.unsigned_abs() < b.unsigned_abs());
        }
    }

    /// Unsigned division identity.
    #[test]
    fn unsigned_division_identity(a in any::<u64>(), b in 1u64..) {
        let cpu = run(&with_operands(a, b, &[
            Instruction::r(Opcode::Divu, Reg::X12, Reg::X10, Reg::X11),
            Instruction::r(Opcode::Remu, Reg::X13, Reg::X10, Reg::X11),
        ]));
        prop_assert_eq!(cpu.x[12].wrapping_mul(b).wrapping_add(cpu.x[13]), a);
        prop_assert!(cpu.x[13] < b);
    }

    /// mulh/mul reconstruct the full 128-bit signed product.
    #[test]
    fn full_signed_product(a in any::<i64>(), b in any::<i64>()) {
        let cpu = run(&with_operands(a as u64, b as u64, &[
            Instruction::r(Opcode::Mul, Reg::X12, Reg::X10, Reg::X11),
            Instruction::r(Opcode::Mulh, Reg::X13, Reg::X10, Reg::X11),
        ]));
        let expected = i128::from(a) * i128::from(b);
        let got = (i128::from(cpu.x[13] as i64) << 64) | i128::from(cpu.x[12]);
        prop_assert_eq!(got, expected);
    }

    /// Aligned store/load round-trips for every access width.
    #[test]
    fn store_load_round_trip(value in any::<u64>(), slot in 0u8..32) {
        // t0 (x5) holds DATA_BASE from the prologue; use 8-byte slots.
        let offset = i64::from(slot) * 8;
        let cpu = run(&with_operands(value, 0, &[
            Instruction::s(Opcode::Sd, Reg::X10, offset, Reg::X5),
            Instruction::i(Opcode::Ld, Reg::X12, Reg::X5, offset),
            Instruction::i(Opcode::Lwu, Reg::X13, Reg::X5, offset),
            Instruction::i(Opcode::Lhu, Reg::X14, Reg::X5, offset),
            Instruction::i(Opcode::Lbu, Reg::X15, Reg::X5, offset),
        ]));
        prop_assert_eq!(cpu.x[12], value);
        prop_assert_eq!(cpu.x[13], u64::from(value as u32));
        prop_assert_eq!(cpu.x[14], u64::from(value as u16));
        prop_assert_eq!(cpu.x[15], u64::from(value as u8));
    }

    /// Branch direction agrees with the host comparison for every branch
    /// opcode.
    #[test]
    fn branch_semantics(a in any::<u64>(), b in any::<u64>(), which in 0usize..6) {
        let (op, expected) = match which {
            0 => (Opcode::Beq, a == b),
            1 => (Opcode::Bne, a != b),
            2 => (Opcode::Blt, (a as i64) < (b as i64)),
            3 => (Opcode::Bge, (a as i64) >= (b as i64)),
            4 => (Opcode::Bltu, a < b),
            _ => (Opcode::Bgeu, a >= b),
        };
        // Taken branch skips the marker write.
        let cpu = run(&with_operands(a, b, &[
            Instruction::b(op, Reg::X10, Reg::X11, 8),
            Instruction::i(Opcode::Addi, Reg::X20, Reg::X0, 1),
            Instruction::NOP,
        ]));
        prop_assert_eq!(cpu.x[20] == 0, expected, "{} {:#x} {:#x}", op, a, b);
    }

    /// Executing a pseudo-instruction and its expansion yields identical
    /// architectural state.
    #[test]
    fn pseudo_expansion_equivalence(
        a in any::<u64>(),
        op_idx in 0..Opcode::COUNT,
    ) {
        let op = Opcode::ALL[op_idx];
        prop_assume!(op.is_pseudo());
        let spec = op.spec();
        // Only data-flow pseudos are compared (control flow changes the pc
        // stream by construction).
        prop_assume!(spec.addr == hfl_riscv::AddrKind::None);
        prop_assume!(!op.is_control_flow());
        let pseudo = Instruction::new(op, 12, 10, 0, 0, -84, hfl_riscv::Csr::FFLAGS);
        let real = pseudo.expand_pseudo();
        let run_with = |inst: Instruction| {
            let mut body = hfl_grm::program::emit_li64(Reg::X10, a);
            body.push(inst);
            run(&body)
        };
        let with_pseudo = run_with(pseudo);
        let with_real = run_with(real);
        prop_assert_eq!(with_pseudo.x, with_real.x);
        prop_assert_eq!(with_pseudo.f, with_real.f);
    }

    /// Shift pairs: `sll` then `srl` by the same in-range amount masks to
    /// the shifted-out-free value.
    #[test]
    fn shift_round_trip(a in any::<u64>(), sh in 0i64..64) {
        let cpu = run(&with_operands(a, 0, &[
            Instruction::i(Opcode::Slli, Reg::X12, Reg::X10, sh),
            Instruction::i(Opcode::Srli, Reg::X13, Reg::X12, sh),
        ]));
        prop_assert_eq!(cpu.x[13], (a << sh) >> sh);
    }

    /// Zbb rotate pairs are inverses.
    #[test]
    fn rotate_inverse(a in any::<u64>(), sh in 0i64..64) {
        let cpu = run(&with_operands(a, 0, &[
            Instruction::i(Opcode::Rori, Reg::X12, Reg::X10, sh),
        ]));
        prop_assert_eq!(cpu.x[12].rotate_left(sh as u32), a);
    }
}
