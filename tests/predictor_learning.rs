//! Integration test for the §IV-C case study: the LSTM coverage predictor
//! must learn real DUT coverage from tokenised test cases with useful
//! accuracy, and the value predictor must learn TD targets inside the
//! loop.

use hfl::baselines::random_instruction;
use hfl::predictor::{CoveragePredictor, PredictorConfig};
use hfl::Tokens;
use hfl_dut::{CoreKind, Dut};
use hfl_grm::Program;
use hfl_nn::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One labelled case: the token sequence and its live-point labels.
type LabelledCase = (Vec<Tokens>, Vec<f32>);

/// Builds a small labelled corpus of (token sequence, live-point labels).
fn build_corpus(cases: usize, seed: u64) -> (Vec<LabelledCase>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dut = Dut::new(CoreKind::Rocket);
    let mut dataset = Vec::with_capacity(cases);
    for _ in 0..cases {
        let body: Vec<_> = (0..10).map(|_| random_instruction(&mut rng)).collect();
        let result = dut.run_program(&Program::assemble(&body), 20_000);
        let labels: Vec<f32> = result
            .coverage
            .to_bit_labels()
            .iter()
            .map(|&b| f32::from(b))
            .collect();
        dataset.push((Tokens::sequence_with_bos(&body), labels));
    }
    // Dead-point removal (§IV-C).
    let n = dataset[0].1.len();
    let alive: Vec<usize> = (0..n)
        .filter(|&p| {
            let hits: usize = dataset.iter().map(|(_, l)| l[p] as usize).sum();
            hits != 0 && hits != dataset.len()
        })
        .collect();
    let projected = dataset
        .into_iter()
        .map(|(seq, labels)| {
            let l: Vec<f32> = alive.iter().map(|&p| labels[p]).collect();
            (seq, l)
        })
        .collect();
    (projected, alive.len())
}

#[test]
fn dead_point_fraction_is_substantial() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut dut = Dut::new(CoreKind::Rocket);
    let mut always = None::<Vec<bool>>;
    let mut never = None::<Vec<bool>>;
    for _ in 0..60 {
        let body: Vec<_> = (0..10).map(|_| random_instruction(&mut rng)).collect();
        let result = dut.run_program(&Program::assemble(&body), 20_000);
        let bits = result.coverage.to_bit_labels();
        let a = always.get_or_insert_with(|| vec![true; bits.len()]);
        let n = never.get_or_insert_with(|| vec![true; bits.len()]);
        for (i, &b) in bits.iter().enumerate() {
            if b == 0 {
                a[i] = false;
            } else {
                n[i] = false;
            }
        }
    }
    let always = always.unwrap();
    let never = never.unwrap();
    let dead = always
        .iter()
        .zip(&never)
        .filter(|(a, n)| **a || **n)
        .count();
    let frac = dead as f64 / always.len() as f64;
    // The paper reports >70% dead points on RocketChip; our DUT must show
    // the same qualitative structure (a large dead fraction).
    assert!(frac > 0.55, "dead fraction only {frac:.2}");
    assert!(frac < 1.0, "some points must be alive");
}

#[test]
fn coverage_predictor_beats_the_majority_baseline() {
    let (dataset, n_alive) = build_corpus(120, 1);
    assert!(n_alive > 10, "need live points to learn ({n_alive})");
    let split = dataset.len() * 9 / 10;
    let (train, valid) = dataset.split_at(split);

    let mut rng = StdRng::seed_from_u64(2);
    let cfg = PredictorConfig {
        hidden: 32,
        ..PredictorConfig::small()
    };
    let mut predictor = CoveragePredictor::new(cfg, n_alive, &mut rng);
    let mut adam = Adam::new(2e-3);
    for _ in 0..6 {
        for (seq, labels) in train {
            predictor.train_case(seq, labels, &mut adam);
        }
    }

    // Accuracy of the trained model vs. predicting the per-point majority
    // class of the training set.
    let mut majority = vec![0usize; n_alive];
    for (_, labels) in train {
        for (m, &l) in majority.iter_mut().zip(labels) {
            *m += l as usize;
        }
    }
    let majority: Vec<f32> = majority
        .iter()
        .map(|&hits| f32::from(u8::from(hits * 2 >= train.len())))
        .collect();

    let mut model_correct = 0usize;
    let mut baseline_correct = 0usize;
    let mut total = 0usize;
    for (seq, labels) in valid {
        let probs = predictor.predict(seq);
        for ((&p, &l), &m) in probs.iter().zip(labels).zip(&majority) {
            total += 1;
            if (p >= 0.5) == (l >= 0.5) {
                model_correct += 1;
            }
            if (m >= 0.5) == (l >= 0.5) {
                baseline_correct += 1;
            }
        }
    }
    let model_acc = model_correct as f64 / total as f64;
    let baseline_acc = baseline_correct as f64 / total as f64;
    assert!(
        model_acc >= baseline_acc - 0.02,
        "model {model_acc:.3} must not lose to majority {baseline_acc:.3}"
    );
    assert!(model_acc > 0.7, "absolute accuracy too low: {model_acc:.3}");
}

#[test]
fn predictor_accuracy_improves_with_training() {
    let (dataset, n_alive) = build_corpus(60, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = PredictorConfig {
        hidden: 24,
        ..PredictorConfig::small()
    };
    let mut predictor = CoveragePredictor::new(cfg, n_alive, &mut rng);
    let mut adam = Adam::new(2e-3);
    let eval = |p: &CoveragePredictor| -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (seq, labels) in &dataset {
            let probs = p.predict(seq);
            for (&prob, &l) in probs.iter().zip(labels) {
                total += 1;
                if (prob >= 0.5) == (l >= 0.5) {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    };
    let before = eval(&predictor);
    for _ in 0..8 {
        for (seq, labels) in &dataset {
            predictor.train_case(seq, labels, &mut adam);
        }
    }
    let after = eval(&predictor);
    assert!(
        after > before,
        "training accuracy must improve: {before:.3} -> {after:.3}"
    );
}
