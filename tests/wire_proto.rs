//! Property tests for the `hfl::wire` frame protocol: every payload
//! round-trips bit-exactly, and hostile inputs — truncations at every
//! byte boundary, single-byte corruption at every offset, random
//! garbage, version skew — are rejected with a typed [`WireError`] and
//! never a panic.
//!
//! The vendored proptest stub only provides integer strategies, so
//! structured payloads are derived from integer seeds through a
//! splitmix generator (the same pattern as `tests/serve_proto.rs`).

use hfl::spec::FuzzerKind;
use hfl::wire::{Frame, Payload, WireError, PROTOCOL_VERSION};
use hfl::HarvestedCase;
use hfl_dut::{CoreKind, CoverageSnapshot};
use hfl_riscv::Instruction;
use proptest::prelude::*;

/// Deterministic splitmix64 — the seed-to-structure expander.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn blob(&mut self, max_len: u64) -> Vec<u8> {
        (0..self.below(max_len))
            .map(|_| self.next() as u8)
            .collect()
    }

    fn word(&mut self) -> String {
        let len = 1 + self.below(12);
        (0..len)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }

    fn snapshot(&mut self) -> CoverageSnapshot {
        let len = 1 + self.below(120) as usize;
        let words = len.div_ceil(64);
        let mut bits: Vec<u64> = (0..words).map(|_| self.next()).collect();
        // Mask the tail so no bit lies beyond `len`.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        CoverageSnapshot::from_words(len, bits).expect("word count matches length")
    }

    fn harvest(&mut self) -> Vec<HarvestedCase> {
        (0..self.below(3))
            .map(|i| HarvestedCase {
                case: i * 7 + self.below(100),
                body: vec![Instruction::NOP; 1 + self.below(6) as usize],
                coverage: self.snapshot(),
            })
            .collect()
    }

    /// One structurally valid payload of a pseudo-random variant.
    fn payload(&mut self) -> Payload {
        match self.below(8) {
            0 => Payload::Hello {
                worker: self.next() as u32,
            },
            1 => Payload::Assign {
                member: self.below(64) as u32,
                name: self.word(),
                core: CoreKind::ALL[self.below(CoreKind::ALL.len() as u64) as usize],
                fuzzer: FuzzerKind::ALL[self.below(FuzzerKind::ALL.len() as u64) as usize],
                seed: self.next(),
                max_steps: 1 + self.below(10_000),
                batch: 1 + self.below(8),
                threads: 1 + self.below(8),
                heartbeat_millis: 1 + self.below(10_000),
            },
            2 => Payload::Grant {
                epoch: self.below(1000),
                budget: self.below(1000),
                state: self.blob(64),
                fuzzer_state: self.blob(64),
            },
            3 => Payload::EpochResult {
                epoch: self.below(1000),
                member: self.below(64) as u32,
                state: self.blob(64),
                fuzzer_state: self.blob(64),
                harvest: self.harvest(),
            },
            4 => Payload::Heartbeat {
                worker: self.next() as u32,
            },
            5 => Payload::Shutdown,
            6 => Payload::Bye {
                worker: self.next() as u32,
            },
            _ => Payload::Error {
                message: self.word(),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload the protocol can express round-trips bit-exactly
    /// through encode/decode, and back-to-back frames on one stream
    /// each consume exactly their own bytes.
    #[test]
    fn payloads_round_trip(seed in any::<u64>(), frames in 1usize..5) {
        let mut rng = Mix(seed);
        let payloads: Vec<Payload> = (0..frames).map(|_| rng.payload()).collect();
        let mut stream = Vec::new();
        for payload in &payloads {
            let bytes = Frame::new(payload.clone()).encode().expect("encodes");
            prop_assert_eq!(
                Frame::decode(&bytes).expect("decodes").payload.clone(),
                payload.clone()
            );
            stream.extend(bytes);
        }
        let mut cursor: &[u8] = &stream;
        for payload in &payloads {
            let frame = Frame::read_from(&mut cursor).expect("stream frame");
            prop_assert_eq!(&frame.payload, payload);
            prop_assert_eq!(frame.version, PROTOCOL_VERSION);
        }
        prop_assert!(cursor.is_empty());
    }

    /// Truncating a valid frame at *every* byte boundary yields a typed
    /// error — never a panic, never a bogus success.
    #[test]
    fn every_truncation_point_is_rejected(seed in any::<u64>()) {
        let mut rng = Mix(seed);
        let bytes = Frame::new(rng.payload()).encode().expect("encodes");
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Ok(frame) => prop_assert!(
                    false,
                    "truncation at {cut}/{} decoded as {}",
                    bytes.len(),
                    frame.payload.name()
                ),
                Err(e) => {
                    // Must be a typed rejection; most cuts are plain
                    // truncation, cuts inside the trailer corrupt the
                    // checksum first.
                    let _ = e.to_string();
                }
            }
        }
    }

    /// Flipping any single byte of a valid frame never panics. If the
    /// mutant still decodes (e.g. a flipped *minor* version byte, which
    /// the contract tolerates), the payload must be untouched.
    #[test]
    fn single_byte_corruption_never_panics(seed in any::<u64>()) {
        let mut rng = Mix(seed);
        let payload = rng.payload();
        let bytes = Frame::new(payload.clone()).encode().expect("encodes");
        for at in 0..bytes.len() {
            let mut mutant = bytes.clone();
            mutant[at] ^= 1 << rng.below(8);
            match Frame::decode(&mutant) {
                Ok(frame) => {
                    if (4..8).contains(&at) {
                        // Version bytes are outside the checksum; a
                        // tolerated minor skew must not touch the payload.
                        prop_assert_eq!(&frame.payload, &payload, "byte {at} changed the payload");
                    } else if (8..12).contains(&at) {
                        // A flipped kind byte may legally re-interpret the
                        // body as a sibling variant with the same encoding
                        // (Hello / Heartbeat / Bye all carry one worker id).
                        prop_assert!(frame.payload.kind() != payload.kind());
                    } else {
                        // Everything else is covered by magic, length
                        // bounds or the FNV-1a trailer.
                        prop_assert!(false, "flip at byte {at} decoded undetected");
                    }
                }
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }

    /// Random garbage never panics the decoder, whether presented as a
    /// slice or as a stream.
    #[test]
    fn garbage_is_survivable(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = Mix(seed);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        if rng.below(3) == 0 && bytes.len() >= 4 {
            // Sometimes lead with valid magic so the parser gets past
            // the first gate and exercises the deeper rejections.
            bytes[0..4].copy_from_slice(b"HFLW");
        }
        let _ = Frame::decode(&bytes);
        let mut cursor: &[u8] = &bytes;
        let _ = Frame::read_from(&mut cursor);
    }

    /// Every major version other than ours is refused with the typed
    /// mismatch error naming both sides.
    #[test]
    fn foreign_major_versions_are_refused(seed in any::<u64>(), major in any::<u16>()) {
        prop_assume!(major != PROTOCOL_VERSION.0);
        let mut rng = Mix(seed);
        let mut bytes = Frame::new(rng.payload()).encode().expect("encodes");
        bytes[4..6].copy_from_slice(&major.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(WireError::VersionMismatch { ours, theirs }) => {
                prop_assert_eq!(ours, PROTOCOL_VERSION);
                prop_assert_eq!(theirs.0, major);
            }
            other => prop_assert!(false, "expected version mismatch, got {other:?}"),
        }
    }
}
