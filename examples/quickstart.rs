//! Quickstart: run a small HFL campaign on RocketChip and watch coverage
//! and mismatch signatures accumulate.
//!
//! ```text
//! cargo run --release --example quickstart [cases]
//! ```

use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, RunConfig};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl_dut::CoreKind;

fn main() {
    let cases: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // The paper's configuration uses a 2x256 LSTM; the quickstart keeps the
    // same loop with narrower layers so it finishes in seconds. Swap in
    // `HflConfig::paper_default()` for the full model.
    let config = HflConfig::small().with_seed(7);
    println!(
        "HFL quickstart: {} cases on {}, hidden={} layers={}",
        cases,
        CoreKind::Rocket,
        config.generator.hidden,
        config.generator.layers
    );

    let mut hfl = HflFuzzer::new(config);
    let campaign = CampaignConfig {
        cases,
        sample_every: (cases / 10).max(1),
        run: RunConfig::quick().with_max_steps(20_000),
    };
    let spec = CampaignSpec::builder(CoreKind::Rocket, campaign)
        .build()
        .expect("valid campaign spec");
    let result = run_campaign(&mut hfl, &spec).expect("campaign runs");

    println!("\n  cases | condition |   line |   fsm");
    for sample in &result.curve {
        println!(
            "  {:>5} | {:>6}/{:<3} | {:>3}/{:<3} | {:>2}/{:<3}",
            sample.cases,
            sample.condition,
            result.totals.0,
            sample.line,
            result.totals.1,
            sample.fsm,
            result.totals.2,
        );
    }

    let stats = hfl.stats();
    println!("\nloop stats: {stats:?}");
    println!(
        "mismatches: {} observed, {} unique signatures",
        result.total_mismatches, result.unique_signatures
    );
    for (sig, case) in &result.first_detection {
        println!("  {sig} first seen at case {case}");
    }
}
