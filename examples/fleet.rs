//! A three-member heterogeneous fleet: DifuzzRTL, TheHuzz and Cascade
//! analogues fuzz the same core in lock-stepped epochs, feeding one
//! shared corpus. Between epochs the fleet deduplicates and distills the
//! corpus, merges the members' coverage bitmaps into one ensemble curve,
//! and shifts the next epoch's case budget toward whichever member is
//! currently buying the most new coverage per case.
//!
//! ```text
//! cargo run --release --example fleet [epochs] [cases_per_epoch]
//! ```

use hfl::baselines::{CascadeFuzzer, DifuzzRtlFuzzer, TheHuzzFuzzer};
use hfl::fleet::{run_fleet, FleetConfig, FleetMember, FleetSpec};
use hfl_dut::CoreKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let epochs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let cases_per_epoch: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);

    let mut members = vec![
        FleetMember::new(
            "difuzz",
            CoreKind::Rocket,
            Box::new(DifuzzRtlFuzzer::new(7, 16)),
        ),
        FleetMember::new(
            "thehuzz",
            CoreKind::Rocket,
            Box::new(TheHuzzFuzzer::new(9, 16)),
        ),
        FleetMember::new(
            "cascade",
            CoreKind::Rocket,
            Box::new(CascadeFuzzer::new(1, 60)),
        ),
    ];

    println!(
        "fleet: {} members x {epochs} epochs x {cases_per_epoch} cases on {}",
        members.len(),
        CoreKind::Rocket
    );
    let spec = FleetSpec::builder(FleetConfig::quick(epochs, cases_per_epoch).with_batch(2))
        .corpus_capacity(128)
        .build()?;
    let result = run_fleet(&mut members, &spec)?;

    println!();
    println!(
        "{:>6} {:>8} {:>10} {:>6} {:>5} {:>6}",
        "epoch", "cases", "condition", "line", "fsm", "sigs"
    );
    for sample in &result.merged_curve {
        println!(
            "{:>6} {:>8} {:>10} {:>6} {:>5} {:>6}",
            sample.epoch,
            sample.cases,
            sample.condition,
            sample.line,
            sample.fsm,
            sample.unique_signatures
        );
    }

    println!();
    println!("members (cases include the scheduler's reallocations):");
    for member in &result.members {
        let last = member.curve.last().expect("one sample per epoch");
        println!(
            "  {:<10} {:>4} cases -> coverage ({}, {}, {}), {} signatures, {} retired",
            member.name,
            member.cases,
            last.condition,
            last.line,
            last.fsm,
            member.unique_signatures,
            member.instructions_executed
        );
    }

    let (condition, line, fsm) = result.final_counts();
    println!();
    println!(
        "merged: ({condition}, {line}, {fsm}) across {} cases; shared corpus holds {} distilled \
         entries ({} inserted, {} duplicates dropped, {} evicted)",
        result.merged_curve.last().map_or(0, |s| s.cases),
        result.corpus.len(),
        result.corpus.stats().inserted,
        result.corpus.stats().duplicates,
        result.corpus.stats().evicted,
    );
    println!(
        "next-epoch budgets the scheduler would apply: {:?}",
        result.budgets
    );
    Ok(())
}
