//! Concurrency-bug hunting on the two-hart system DUT: inject the C1
//! LR/SC reservation race, fuzz interleaving seeds over its trigger body,
//! then minimise the first PoC and print the divergence report.
//!
//! ```text
//! cargo run --release --example mhart [seeds]
//! ```

use hfl::baselines::TestBody;
use hfl::harness::Executor;
use hfl::poc::poc_body_for;
use hfl::triage::minimize_body;
use hfl_dut::{bugs, CoreKind, MhartMachine};
use hfl_grm::cpu::Quirks;
use hfl_grm::Program;
use hfl_riscv::asm::format_program;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let bug = bugs::find("C1").expect("C1 is catalogued");
    println!("defect under test: {} — {}", bug.id, bug.name);

    let mut quirks = Quirks::default();
    bugs::enable(&mut quirks, bug.id, CoreKind::Rocket);
    let mut executor = Executor::builder(CoreKind::Rocket)
        .quirks(quirks.clone())
        .mhart(true)
        .build();

    // The body is fixed; the search space is the interleaving seed. Only
    // schedules that land hart 1's store inside hart 0's LR/SC window
    // realise the race.
    println!("fuzzing {seeds} interleaving seeds over the trigger body...");
    let Some((seed, signature)) = (0..seeds).find_map(|seed| {
        let result = executor.run(&poc_body_for(bug.id, seed));
        result.mismatches.first().map(|m| (seed, m.signature()))
    }) else {
        println!("no interleaving in 0..{seeds} exposed the race; try more seeds");
        return;
    };
    println!("seed {seed:#x} exposed the race (signature {signature})");

    let body = poc_body_for(bug.id, seed);
    let minimized = minimize_body(&mut executor, &body, signature).expect("PoC reproduces");
    println!(
        "minimised {} -> {} instructions ({:.0}% reduction, {} executions), sched_seed held at {:#x}",
        minimized.original_len,
        minimized.body.len(),
        100.0 * minimized.reduction(),
        minimized.executions,
        minimized.sched_seed.expect("multi-hart case records its seed"),
    );
    print!("{}", format_program(&minimized.body));

    // Divergence report: replay the minimised case on the raw machine and
    // show where each hart left the reference's serialisation.
    let replay = TestBody::Mhart {
        body: minimized.body.clone(),
        sched_seed: seed,
    };
    let case = executor.run(&replay);
    for m in &case.mismatches {
        println!("  -> {m}");
    }
    let mut machine = MhartMachine::new(quirks);
    let result = machine.run(&Program::assemble(&minimized.body), seed, 10_000);
    println!(
        "schedule: {} committed events, {} scheduled steps, diverged = {}",
        result.schedule.len(),
        result.scheduled_steps,
        result.diverged()
    );
    for (h, (dut, grm)) in result.harts.iter().zip(&result.reference).enumerate() {
        println!(
            "hart {h}: dut {} steps halt {:?} | reference {} steps halt {:?}",
            dut.steps, dut.halt, grm.steps, grm.halt
        );
    }
}
