//! Checkpointing a trained generator: run a short campaign, save the
//! learned instruction generator to disk, reload it and show that the
//! restored model generates the same instruction stream — campaigns can be
//! suspended and resumed, and trained generators shipped as artefacts.
//!
//! ```text
//! cargo run --release --example checkpoint [cases]
//! ```

use std::fs::File;
use std::io::BufWriter;

use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl::generator::InstructionGenerator;
use hfl_dut::CoreKind;
use hfl_nn::Persist;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    let mut cfg = HflConfig::small().with_seed(11);
    cfg.generator.hidden = 32;
    cfg.predictor.hidden = 32;
    let mut hfl = HflFuzzer::new(cfg);
    println!(
        "training the generator for {cases} cases on {}...",
        CoreKind::Rocket
    );
    let spec = CampaignSpec::new(CoreKind::Rocket, CampaignConfig::quick(cases));
    let result = run_campaign(&mut hfl, &spec);
    println!(
        "campaign done: condition coverage {}/{}, {} unique signatures",
        result.final_counts().0,
        result.totals.0,
        result.unique_signatures
    );

    let path = std::env::temp_dir().join("hfl_generator.ckpt");
    {
        let mut writer = BufWriter::new(File::create(&path)?);
        hfl.generator().save(&mut writer)?;
    }
    let size = std::fs::metadata(&path)?.len();
    println!(
        "saved generator checkpoint: {} ({size} bytes)",
        path.display()
    );

    let mut reader = std::io::BufReader::new(File::open(&path)?);
    let restored = InstructionGenerator::load(&mut reader)?;
    println!("reloaded; comparing generation streams...");

    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    let mut session_a = hfl.generator().start_session();
    let mut session_b = restored.start_session();
    for i in 0..8 {
        let (a, _) = hfl.generator().next_instruction(&mut session_a, &mut rng_a);
        let (b, _) = restored.next_instruction(&mut session_b, &mut rng_b);
        assert_eq!(a.instruction, b.instruction, "stream diverged at {i}");
        println!("  [{i}] {}", a.instruction);
    }
    println!("restored generator replays the trained policy exactly.");
    std::fs::remove_file(&path)?;
    Ok(())
}
