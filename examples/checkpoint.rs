//! Crash-safe campaigns: interrupt a running campaign at an arbitrary
//! round, resume it from the on-disk snapshot, and show that the resumed
//! run's coverage curve and signatures are bit-identical to a reference
//! campaign that was never interrupted — no matter where the stop landed.
//!
//! The snapshot captures the whole loop: progress counters, cumulative
//! coverage, signatures, corpora, metrics and the fuzzer's own state
//! (RNG streams, LSTM weights, Adam moments), written atomically so a
//! crash mid-write can never corrupt the previous checkpoint.
//!
//! ```text
//! cargo run --release --example checkpoint [cases]
//! ```

use std::time::Duration;

use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, CheckpointPolicy};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl_dut::CoreKind;

fn tiny_hfl() -> HflFuzzer {
    let mut cfg = HflConfig::small().with_seed(11);
    cfg.generator.hidden = 32;
    cfg.predictor.hidden = 32;
    HflFuzzer::new(cfg)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let config = CampaignConfig::quick(cases);
    let dir = std::env::temp_dir().join(format!("hfl-checkpoint-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: the same campaign, never interrupted.
    println!("reference: {cases} cases on {} ...", CoreKind::Rocket);
    let mut reference_fuzzer = tiny_hfl();
    let reference = run_campaign(
        &mut reference_fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, config).build()?,
    )?;

    // Interrupted: checkpoint every round, and pull the plug from another
    // thread at an arbitrary wall-clock moment. Wherever the stop lands,
    // the runner finishes the round, writes a final snapshot and returns.
    let stop = hfl::StopHandle::new();
    let plug = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            stop.request_stop();
        })
    };
    let mut fuzzer = tiny_hfl();
    let partial = run_campaign(
        &mut fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .checkpoint(CheckpointPolicy::new(&dir, 1))
            .control(stop)
            .build()?,
    )?;
    plug.join().expect("plug thread");
    println!(
        "interrupted after {} of {cases} cases (completed: {})",
        partial.curve.last().map_or(0, |s| s.cases),
        partial.completed
    );

    // Resume from the latest snapshot with a fresh process's worth of
    // state: a brand-new fuzzer whose weights/RNG are overwritten by the
    // restore.
    let snapshot = CheckpointPolicy::latest_snapshot(&dir).expect("snapshot written");
    println!("resuming from {} ...", snapshot.display());
    let mut resumed_fuzzer = tiny_hfl();
    let resumed = run_campaign(
        &mut resumed_fuzzer,
        &CampaignSpec::builder(CoreKind::Rocket, config)
            .resume_from(snapshot)
            .build()?,
    )?;

    assert!(resumed.completed);
    assert_eq!(reference.curve, resumed.curve, "coverage curve diverged");
    assert_eq!(reference.signatures, resumed.signatures);
    assert_eq!(reference.first_detection, resumed.first_detection);
    assert_eq!(
        reference.instructions_executed,
        resumed.instructions_executed
    );
    let (c, l, f) = resumed.final_counts();
    println!(
        "resumed run is bit-identical to the uninterrupted reference: \
         final coverage ({c}, {l}, {f}), {} unique signatures",
        resumed.unique_signatures
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
