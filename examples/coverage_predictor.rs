//! The §IV-C case study in miniature: train the LSTM hardware-coverage
//! predictor on random RocketChip test cases and report per-point
//! validation accuracy for condition, line and FSM coverage (the paper's
//! Fig. 3).
//!
//! ```text
//! cargo run --release --example coverage_predictor [cases] [epochs]
//! ```

use hfl::predictor::{CoveragePredictor, PredictorConfig};
use hfl::Tokens;
use hfl_dut::{CoreKind, CoverageKind, Dut};
use hfl_grm::Program;
use hfl_nn::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cases: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let epochs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("generating {cases} random test cases on RocketChip...");
    let mut rng = StdRng::seed_from_u64(1);
    let mut dut = Dut::new(CoreKind::Rocket);
    let mut dataset: Vec<(Vec<Tokens>, Vec<f32>)> = Vec::with_capacity(cases);
    for _ in 0..cases {
        let body: Vec<_> = (0..12)
            .map(|_| hfl::baselines::random_instruction(&mut rng))
            .collect();
        let result = dut.run_program(&Program::assemble(&body), 20_000);
        let labels: Vec<f32> = result
            .coverage
            .to_bit_labels()
            .iter()
            .map(|&b| f32::from(b))
            .collect();
        dataset.push((Tokens::sequence_with_bos(&body), labels));
    }

    // Dead-point removal (§IV-C): points always or never covered carry no
    // signal and are excluded.
    let n_points = dataset[0].1.len();
    let mut alive = Vec::new();
    for p in 0..n_points {
        let hits: usize = dataset.iter().map(|(_, l)| l[p] as usize).sum();
        if hits != 0 && hits != dataset.len() {
            alive.push(p);
        }
    }
    println!(
        "{} of {} coverage points are live ({:.0}% dead, paper reports >70%)",
        alive.len(),
        n_points,
        100.0 * (1.0 - alive.len() as f64 / n_points as f64)
    );

    // 90/10 train/validation split (§IV-C).
    let split = dataset.len() * 9 / 10;
    let (train, valid) = dataset.split_at(split);

    let cfg = PredictorConfig::small();
    let mut predictor = CoveragePredictor::new(cfg, alive.len(), &mut rng);
    let mut adam = Adam::new(1e-3);
    let project = |labels: &[f32]| -> Vec<f32> { alive.iter().map(|&p| labels[p]).collect() };

    for epoch in 0..epochs {
        let mut loss = 0.0;
        for (seq, labels) in train {
            loss += predictor.train_case(seq, &project(labels), &mut adam);
        }
        println!(
            "epoch {:>2}: mean BCE {:.4}",
            epoch + 1,
            loss / train.len() as f32
        );
    }

    // Per-point validation accuracy, grouped by metric as in Fig. 3.
    let map = dut.coverage_map();
    let mut per_kind: Vec<(CoverageKind, Vec<f64>)> =
        CoverageKind::ALL.iter().map(|k| (*k, Vec::new())).collect();
    let mut correct_per_point = vec![0usize; alive.len()];
    for (seq, labels) in valid {
        let probs = predictor.predict(seq);
        let labels = project(labels);
        for (i, (&p, &l)) in probs.iter().zip(&labels).enumerate() {
            if (p >= 0.5) == (l >= 0.5) {
                correct_per_point[i] += 1;
            }
        }
    }
    for (i, &point) in alive.iter().enumerate() {
        let acc = correct_per_point[i] as f64 / valid.len() as f64;
        let kind = map.kind(hfl_dut::PointId::from_index(point));
        if let Some((_, v)) = per_kind.iter_mut().find(|(k, _)| *k == kind) {
            v.push(acc)
        }
    }
    println!("\nvalidation accuracy by metric (paper Fig. 3: cond 94%, line 94%, fsm 97%):");
    for (kind, accs) in &per_kind {
        if accs.is_empty() {
            continue;
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!(
            "  {kind:<10} {:>5.1}%  over {} live points",
            100.0 * mean,
            accs.len()
        );
    }
}
