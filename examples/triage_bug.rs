//! End-to-end triage: fuzz a core until a mismatch signature appears,
//! then minimise the triggering test case to a compact reproducer and
//! print it as assembly — the workflow behind the paper's §VII listings.
//!
//! ```text
//! cargo run --release --example triage_bug [cases]
//! ```

use hfl::baselines::DifuzzRtlFuzzer;
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec};
use hfl::harness::Executor;
use hfl::triage::minimize;
use hfl_dut::CoreKind;
use hfl_riscv::asm::format_program;

fn main() {
    let cases: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let core = CoreKind::Cva6;

    println!("fuzzing {core} for up to {cases} cases...");
    let mut fuzzer = DifuzzRtlFuzzer::new(29, 16);
    let result = run_campaign(
        &mut fuzzer,
        &CampaignSpec::builder(core, CampaignConfig::quick(cases))
            .build()
            .expect("valid campaign spec"),
    )
    .expect("campaign runs");
    println!(
        "{} mismatches, {} unique signatures",
        result.total_mismatches, result.unique_signatures
    );
    if result.trigger_corpus.entries().is_empty() {
        println!("no mismatch found in the budget; try more cases");
        return;
    }

    let mut executor = Executor::builder(core).build();
    for entry in result.trigger_corpus.entries() {
        // Recover the signature from a replay (entry names carry its hash).
        let replay = executor.run_case(&entry.body);
        let Some(signature) = replay
            .mismatches
            .iter()
            .map(hfl::Mismatch::signature)
            .find(|s| s.to_string() == entry.name)
        else {
            continue;
        };
        let Some(minimized) = minimize(&mut executor, &entry.body, signature) else {
            continue;
        };
        println!(
            "\n{}: {} -> {} instructions ({:.0}% reduction, {} executions)",
            entry.name,
            minimized.original_len,
            minimized.body.len(),
            100.0 * minimized.reduction(),
            minimized.executions
        );
        print!("{}", format_program(&minimized.body));
        let detail = executor.run_case(&minimized.body);
        if let Some(m) = detail.mismatches.first() {
            println!("  -> {m}");
        }
    }
}
