//! A quick head-to-head: HFL against the four baseline fuzzers on
//! RocketChip condition coverage (a miniature of the paper's §VI
//! comparison; the full sweep lives in the `hfl-bench` harnesses).
//!
//! ```text
//! cargo run --release --example fuzzer_comparison [cases]
//! ```

use hfl::baselines::{CascadeFuzzer, ChatFuzzFuzzer, DifuzzRtlFuzzer, Fuzzer, TheHuzzFuzzer};
use hfl::campaign::{run_campaign, CampaignConfig, CampaignSpec, RunConfig};
use hfl::fuzzer::{HflConfig, HflFuzzer};
use hfl_dut::CoreKind;

fn main() {
    let cases: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250);
    let campaign = CampaignConfig {
        cases,
        sample_every: (cases / 8).max(1),
        run: RunConfig::quick().with_max_steps(20_000),
    };
    let spec = CampaignSpec::builder(CoreKind::Rocket, campaign)
        .build()
        .expect("valid campaign spec");

    let mut hfl = HflFuzzer::new(HflConfig::small().with_seed(3));
    let mut fuzzers: Vec<Box<dyn Fuzzer>> = vec![
        Box::new(DifuzzRtlFuzzer::new(3, 16)),
        Box::new(TheHuzzFuzzer::new(3, 16)),
        Box::new(ChatFuzzFuzzer::new(3, 16)),
        Box::new(CascadeFuzzer::new(3, 120)),
    ];

    println!(
        "{} test cases per fuzzer on {} (condition coverage)",
        cases,
        CoreKind::Rocket
    );
    println!("{:-<72}", "");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "fuzzer", "cond", "line", "fsm", "mismatches", "unique"
    );
    println!("{:-<72}", "");

    let result = run_campaign(&mut hfl, &spec).expect("campaign runs");
    let (c, l, f) = result.final_counts();
    println!(
        "{:<10} {:>6}/{:<3} {:>6}/{:<3} {:>6}/{:<3} {:>12} {:>10}",
        result.fuzzer,
        c,
        result.totals.0,
        l,
        result.totals.1,
        f,
        result.totals.2,
        result.total_mismatches,
        result.unique_signatures
    );

    for fuzzer in &mut fuzzers {
        let result = run_campaign(fuzzer.as_mut(), &spec).expect("campaign runs");
        let (c, l, f) = result.final_counts();
        println!(
            "{:<10} {:>6}/{:<3} {:>6}/{:<3} {:>6}/{:<3} {:>12} {:>10}",
            result.fuzzer,
            c,
            result.totals.0,
            l,
            result.totals.1,
            f,
            result.totals.2,
            result.total_mismatches,
            result.unique_signatures
        );
    }
    println!("{:-<72}", "");
    println!("full sweeps: cargo run -p hfl-bench --bin fig4_coverage_benchmark");
}
