//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses: `Criterion::default().sample_size(n)`, `bench_function` /
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so benches run on a
//! simple timing harness: each target is warmed up once, then timed over
//! `sample_size` samples, reporting min / median / mean per-iteration times.
//! There is no statistical analysis or HTML report, but the numbers are good
//! enough for the before/after throughput comparisons the harnesses make.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver; collects and prints timings for named targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `routine` (which drives a [`Bencher`]) and prints a one-line
    /// timing summary for `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let mut per_iter = bencher.samples;
        if per_iter.is_empty() {
            println!("{name:<48} (no samples)");
            return self;
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!("{name:<48} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}");
        self
    }
}

/// Timing loop handle passed to each benchmark target.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one per-iteration sample per run after a
    /// single untimed warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group; both the struct-like and positional forms of
/// the upstream macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("vendor/criterion_smoke", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs() {
        smoke();
    }
}
