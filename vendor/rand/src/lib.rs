//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the handful of entry points it actually calls: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_bool` and `gen_range`. The generator is xoshiro256++ seeded
//! through SplitMix64 — a different stream from upstream `StdRng` (ChaCha12),
//! which is fine: nothing in the workspace depends on a particular stream,
//! only on determinism for a given seed and on reasonable uniformity.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range (or `[0, 1)`
/// for floats) — the `rand` "Standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) at full f32 mantissa precision.
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from; implemented for half-open and inclusive
/// ranges over the primitive integers and floats.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the Standard distribution (full range for integers,
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators; only [`StdRng`] is provided.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator behind the `StdRng` name the workspace imports.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state so callers can checkpoint the
        /// generator and later resume the exact stream position.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and is mapped
        /// to the same fallback state `seed_from_u64` uses.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let unit = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
