//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the `proptest!` macro with range / `any::<T>()` strategies,
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no access to crates.io, so property tests run on
//! a small deterministic harness instead of the real engine: each property is
//! evaluated over `cases` inputs drawn from a generator seeded by the property
//! name. There is no shrinking — a failure reports the offending inputs'
//! case index and message instead. Integer `any::<T>()` mixes boundary values
//! (0, ±1, MIN, MAX) into the uniform stream so edge cases are exercised
//! early, which covers most of what shrinking would find in practice.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Number of test cases to run per property; mirrors
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Inputs evaluated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic SplitMix64 stream seeded from the property name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from `name` (FNV-1a), so each property gets a stable,
    /// distinct input sequence.
    #[must_use]
    pub fn for_property(name: &str) -> Self {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next word in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Source of values for one property argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-range strategy for `T`, returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over every value of `T` (biased toward boundary values for
/// integers).
#[must_use]
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // One draw in 8 lands on a boundary value; shrinking is not
                // implemented, so probe the edges directly instead.
                if rng.next_u64() % 8 == 0 {
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(2)];
                    EDGES[(rng.next_u64() % 5) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Rejection-sample the tail [start, MAX]; the loop terminates
                // quickly unless start is pathologically close to MAX.
                loop {
                    let v = rng.next_u64() as $t;
                    if v >= self.start {
                        return v;
                    }
                }
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Declares property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in any::<u64>(), idx in 0usize..8) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_property(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            message,
                        );
                    }
                }
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

pub mod prelude {
    //! Mirror of `proptest::prelude` for `use proptest::prelude::*;`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3u8..9, y in -4i64..=4, z in 1u64..) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(z >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_and_assume_work(x in any::<u32>()) {
            prop_assume!(x != 0);
            prop_assert_eq!(x.wrapping_add(1).wrapping_sub(1), x, "x = {}", x);
        }
    }

    #[test]
    fn streams_are_deterministic_per_property() {
        let mut a = crate::TestRng::for_property("p");
        let mut b = crate::TestRng::for_property("p");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_property("q");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
